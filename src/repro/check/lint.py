"""AST lint pass for repo invariants ruff cannot express.

Runnable as ``python -m repro.check.lint`` (wired into CI next to ruff).
The rules over ``src/repro``:

``wallclock``
    No ``time.time()`` / ``time.time_ns()`` / ``datetime.now()`` /
    ``datetime.utcnow()`` / ``date.today()`` anywhere in the library: the
    simulation's determinism (and hence the model checker's replayability)
    requires that virtual time is the only time protocol code observes.

``adhoc-timing``
    No ``time.perf_counter()`` / ``time.monotonic()`` /
    ``time.process_time()`` in the protocol packages: compute durations are
    measured through :class:`repro.obs.timing.Stopwatch` (the one sanctioned
    wall-clock reader), so every measurement lands in the metrics registry
    instead of a local variable.  Non-protocol tooling (``bench``, ``audit``,
    ``check``) may still time itself directly.

``no-print``
    No ``print()`` in the protocol packages: run output goes through the
    observability layer (span attributes, metrics, trace instants), never
    to stdout -- a protocol that prints is a protocol whose behaviour CI
    cannot diff.

``unseeded-random``
    No module-level ``random.<fn>()`` calls and no argument-less
    ``random.Random()``: every random draw must come from an explicitly
    seeded generator, or two runs with the same seed diverge.

``bare-assert``
    No ``assert`` statements in the protocol packages (they vanish under
    ``python -O``); protocol invariants raise
    :class:`~repro.common.errors.ProtocolInvariantError` instead.

``missing-decoder``
    Every class defining ``to_wire`` must have a strict decoder registered
    under its class name in ``recovery/wire.py``'s ``WIRE_DECODERS`` -- the
    static half of the wire round-trip property test.

A trailing ``# lint: allow`` comment on the offending line suppresses
*every* rule for that line -- for ``missing-decoder``, the line is the
``class`` statement of the ``to_wire`` class.  It is used nowhere in the
library today; it exists so a future opt-out is explicit rather than
silent.  (The whole-program analyzer's ``# static: allow`` marker in
:mod:`repro.check.static` follows the same convention.)
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

#: Packages whose runtime code is a protocol hot path (bare asserts banned).
PROTOCOL_PACKAGES = (
    "core",
    "server",
    "net",
    "ledger",
    "recovery",
    "storage",
    "txn",
    "crypto",
    "sim",
)

#: ``module attribute`` call patterns that read the wall clock.
_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Monotonic-timer names banned in protocol packages (use obs Stopwatch).
_ADHOC_TIMING_CALLS = {"perf_counter", "monotonic", "process_time"}

_ALLOW_MARKER = "# lint: allow"


@dataclass(frozen=True)
class LintViolation:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _allowed(source_lines: Sequence[str], line: int) -> bool:
    try:
        return _ALLOW_MARKER in source_lines[line - 1]
    except IndexError:
        return False


class _FileChecker(ast.NodeVisitor):
    def __init__(
        self, path: Path, relative: str, source: str, protocol: bool
    ) -> None:
        self.path = path
        self.relative = relative
        self.lines = source.splitlines()
        #: True when the file lives in a protocol package (stricter rules).
        self.protocol = protocol
        self.violations: List[LintViolation] = []
        self.wire_classes: Dict[str, int] = {}

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            LintViolation(self.relative, getattr(node, "lineno", 0), rule, message)
        )

    # -- determinism --------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None and not _allowed(self.lines, node.lineno):
            tail = tuple(dotted.split(".")[-2:])
            if len(tail) == 2 and tail in _WALLCLOCK_CALLS:
                self._report(
                    node,
                    "wallclock",
                    f"{dotted}() reads the wall clock; use the virtual clock "
                    "(compute is measured through repro.obs.timing.Stopwatch)",
                )
            elif dotted == "print" and self.protocol:
                self._report(
                    node,
                    "no-print",
                    "print() in a protocol package; report through the "
                    "observability layer (metrics / trace instants) instead",
                )
            elif tail[-1] in _ADHOC_TIMING_CALLS and self.protocol:
                self._report(
                    node,
                    "adhoc-timing",
                    f"{dotted}() is an ad-hoc timer; measure through "
                    "repro.obs.timing.Stopwatch so the duration lands in the "
                    "metrics registry",
                )
            elif tail[0] == "random" and tail[1] != "Random":
                self._report(
                    node,
                    "unseeded-random",
                    f"{dotted}() draws from the shared unseeded generator; "
                    "use an explicitly seeded random.Random(seed)",
                )
            elif tail[-1] == "Random" and not node.args and not node.keywords:
                self._report(
                    node,
                    "unseeded-random",
                    f"{dotted}() without a seed is nondeterministic; pass one",
                )
        self.generic_visit(node)

    # -- bare asserts -------------------------------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        if self.protocol and not _allowed(self.lines, node.lineno):
            self._report(
                node,
                "bare-assert",
                "assert vanishes under python -O; raise ProtocolInvariantError "
                "(or a specific FidesError) instead",
            )
        self.generic_visit(node)

    # -- wire codec inventory ------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # `# lint: allow` on the class line exempts it from missing-decoder.
        if not _allowed(self.lines, node.lineno):
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "to_wire":
                    self.wire_classes[node.name] = node.lineno
        self.generic_visit(node)


def _registered_decoders(wire_registry: Path) -> Set[str]:
    """Class names keyed in ``WIRE_DECODERS`` -- extracted statically.

    The registry is read via AST, not import, so the lint runs without the
    package installed (the CI lint job checks out sources only).
    """
    tree = ast.parse(wire_registry.read_text(), filename=str(wire_registry))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "WIRE_DECODERS" not in targets or not isinstance(node.value, ast.Dict):
            continue
        return {
            key.value
            for key in node.value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
    raise LookupError(
        f"{wire_registry}: no literal `WIRE_DECODERS = {{...}}` dict found"
    )


def _is_protocol_path(relative: Path) -> bool:
    return bool(relative.parts) and relative.parts[0] in PROTOCOL_PACKAGES


def lint_tree(
    root: Path, wire_registry: Optional[Path] = None
) -> List[LintViolation]:
    """Lint every ``*.py`` under ``root``; returns all violations, sorted."""
    root = root.resolve()
    if wire_registry is None:
        wire_registry = root / "recovery" / "wire.py"
    violations: List[LintViolation] = []
    wire_classes: Dict[str, tuple] = {}
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            violations.append(
                LintViolation(str(relative), exc.lineno or 0, "syntax", str(exc.msg))
            )
            continue
        checker = _FileChecker(
            path, str(relative), source, protocol=_is_protocol_path(relative)
        )
        checker.visit(tree)
        violations.extend(checker.violations)
        for class_name, line in checker.wire_classes.items():
            wire_classes[class_name] = (str(relative), line)
    if wire_registry.exists():
        registered = _registered_decoders(wire_registry)
        for class_name, (relative, line) in sorted(wire_classes.items()):
            if class_name not in registered:
                violations.append(
                    LintViolation(
                        relative,
                        line,
                        "missing-decoder",
                        f"class {class_name} defines to_wire but has no "
                        "decoder registered in recovery/wire.py WIRE_DECODERS",
                    )
                )
    else:
        violations.append(
            LintViolation(
                str(wire_registry), 0, "missing-decoder", "wire registry file not found"
            )
        )
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def default_root() -> Path:
    """``src/repro`` as located relative to this module file."""
    return Path(__file__).resolve().parent.parent


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.lint",
        description="Determinism / codec-coverage / bare-assert lint for src/repro.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package tree to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--wire-registry",
        type=Path,
        default=None,
        help="wire.py holding WIRE_DECODERS (default: <root>/recovery/wire.py)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit violations as JSON on stdout"
    )
    args = parser.parse_args(argv)
    root = args.root if args.root is not None else default_root()
    violations = lint_tree(root, wire_registry=args.wire_registry)
    if args.json:
        print(
            json.dumps(
                [violation.__dict__ for violation in violations], indent=2
            )
        )
    else:
        for violation in violations:
            print(violation)
        print(
            f"repro.check.lint: {len(violations)} violation(s) in {root}"
            if violations
            else f"repro.check.lint: clean ({root})"
        )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
