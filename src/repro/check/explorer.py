"""Prefix-branching exploration of the choice tree, with dedup and shrink.

The checker is stateless in the CHESS style: a *state* is never snapshotted.
Instead each explored behaviour is identified by the sequence of integer
picks its :class:`~repro.check.choices.ChoiceSource` made.  One run executes
a fresh scenario under a pick *prefix* (defaults past the prefix), records
the full choice trace, and the explorer then enqueues every alternative of
every choice point at or beyond the prefix -- so the search frontier grows
breadth-first over *deviation depth*: first every single deviation from the
default schedule, then every pair, and so on (an iterative deepening over
how far a behaviour strays from the default), bounded by ``max_runs`` /
``max_states`` / ``max_depth``.

Deduplication is by fingerprint: every choice-tree node carries a hash-chain
fingerprint (shared prefixes share nodes), and every completed run a
terminal fingerprint over the event-loop timeline plus the final per-server
logs.  The union of both sets is the "distinct states" count; a prefix whose
terminal fingerprint was already seen is not expanded further.

A run whose invariants fail becomes a :class:`Counterexample`; the explorer
shrinks its pick sequence with a greedy delta-debugging pass (truncate the
prefix, then default-out individual picks, to fixpoint) so the saved trace
is minimal and replayable via :mod:`repro.check.replay`.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.check.choices import ChoiceError, ChoiceSource, driven_by
from repro.check.invariants import RunRecord, Violation, evaluate
from repro.check.scenarios import Scenario


def run_fingerprint(record: RunRecord) -> str:
    """Terminal fingerprint of one run: the timeline plus the final logs."""
    digest = hashlib.sha256()
    digest.update(record.system.sim.loop.fingerprint().encode("utf-8"))
    for server_id, server in sorted(record.system.servers.items()):
        digest.update(server_id.encode("utf-8"))
        if server.crashed:
            digest.update(b"crashed")
            continue
        digest.update(str(server.log.height).encode("utf-8"))
        digest.update(server.log.head_hash)
    return digest.hexdigest()


@dataclass
class Counterexample:
    """One invariant-violating behaviour, as a replayable pick sequence."""

    scenario: str
    picks: List[int]
    violations: List[Violation]
    minimized: bool = False

    @property
    def invariants(self) -> List[str]:
        return sorted({violation.invariant for violation in self.violations})


@dataclass
class ExplorationResult:
    """What one exploration campaign covered and found."""

    scenario: str
    runs: int = 0
    #: Distinct choice-tree nodes + terminal states visited.
    distinct_states: int = 0
    #: Choice points consulted across all runs (tree size lower bound).
    choice_points: int = 0
    counterexamples: List[Counterexample] = field(default_factory=list)
    #: True when the budget ran out with the frontier non-empty.
    budget_exhausted: bool = False

    @property
    def clean(self) -> bool:
        return not self.counterexamples


class Explorer:
    """Budgeted BFS/DFS over one scenario's choice tree."""

    def __init__(
        self,
        scenario_factory: Callable[[], Scenario],
        max_runs: int = 200,
        max_states: Optional[int] = None,
        max_depth: Optional[int] = None,
        strategy: str = "bfs",
        stop_at_first_violation: bool = True,
        minimize: bool = True,
    ) -> None:
        if strategy not in ("bfs", "dfs"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self._factory = scenario_factory
        self.max_runs = max_runs
        self.max_states = max_states
        self.max_depth = max_depth
        self.strategy = strategy
        self.stop_at_first_violation = stop_at_first_violation
        self.should_minimize = minimize

    # -- single runs ---------------------------------------------------------------

    def _execute(self, prefix: List[int]) -> Tuple[Optional[ChoiceSource], Optional[RunRecord]]:
        """One fresh scenario run under ``prefix``; (None, None) if stale."""
        scenario = self._factory()
        source = ChoiceSource(prefix, features=set(scenario.features))
        try:
            with driven_by(source):
                record = scenario.run()
        except ChoiceError:
            # The prefix no longer matches the tree (an earlier pick changed
            # which later sites exist); the frontier entry is simply dropped.
            return None, None
        return source, record

    def _violations(self, scenario_invariants, record: RunRecord) -> List[Violation]:
        return evaluate(record, scenario_invariants)

    # -- the search ----------------------------------------------------------------

    def explore(self) -> ExplorationResult:
        probe_scenario = self._factory()
        scenario_name = probe_scenario.name
        scenario_invariants = probe_scenario.invariants
        result = ExplorationResult(scenario=scenario_name)
        visited: Set[str] = set()
        seen_prefixes: Set[Tuple[int, ...]] = {()}
        frontier: deque = deque([[]])
        while frontier:
            if result.runs >= self.max_runs or (
                self.max_states is not None and len(visited) >= self.max_states
            ):
                result.budget_exhausted = True
                break
            prefix = frontier.popleft() if self.strategy == "bfs" else frontier.pop()
            source, record = self._execute(prefix)
            if source is None:
                continue
            result.runs += 1
            result.choice_points += len(source.trace)
            visited.update(source.node_fingerprints)
            terminal = run_fingerprint(record)
            already_seen = terminal in visited
            visited.add(terminal)
            violations = self._violations(scenario_invariants, record)
            if violations:
                counterexample = Counterexample(
                    scenario=scenario_name,
                    picks=source.picks(),
                    violations=violations,
                )
                if self.should_minimize:
                    counterexample = self.minimize(counterexample)
                result.counterexamples.append(counterexample)
                if self.stop_at_first_violation:
                    break
            if already_seen:
                continue
            picks = source.picks()
            for index in range(len(prefix), len(source.trace)):
                if self.max_depth is not None and index >= self.max_depth:
                    break
                point = source.trace[index]
                for alternative in range(point.options):
                    if alternative == point.picked:
                        continue
                    child = tuple(picks[:index] + [alternative])
                    if child not in seen_prefixes:
                        seen_prefixes.add(child)
                        frontier.append(list(child))
        result.distinct_states = len(visited)
        return result

    # -- counterexample minimization ------------------------------------------------

    def minimize(self, counterexample: Counterexample) -> Counterexample:
        """Greedy delta-debugging shrink of a violating pick sequence.

        Reproduces the violation after every candidate edit (same invariant
        family, not necessarily the identical message): first truncate the
        prefix as far as defaults allow, then default-out each remaining
        non-default pick, then re-truncate -- to fixpoint.  Each probe is a
        full fresh run, so the result is replayable by construction.
        """
        target = set(counterexample.invariants)

        scenario_invariants = self._factory().invariants

        def still_violates(candidate: List[int]) -> Optional[List[Violation]]:
            source, record = self._execute(candidate)
            if source is None:
                return None
            violations = self._violations(scenario_invariants, record)
            if {violation.invariant for violation in violations} & target:
                return violations
            return None

        picks = list(counterexample.picks)
        violations = counterexample.violations
        changed = True
        while changed:
            changed = False
            # Truncation: the shortest prefix that still reproduces.
            length = len(picks)
            while length > 0:
                probe = picks[:length - 1]
                found = still_violates(probe)
                if found is None:
                    break
                picks, violations, length = probe, found, length - 1
                changed = True
            # Default-out: drop each remaining forced pick individually.
            for index, pick in enumerate(picks):
                if pick == 0:
                    continue
                probe = picks[:index] + [0] + picks[index + 1:]
                found = still_violates(probe)
                if found is not None:
                    picks, violations = probe, found
                    changed = True
            # Trailing defaults equal a shorter prefix.
            while picks and picks[-1] == 0:
                picks = picks[:-1]
                changed = True
        return Counterexample(
            scenario=counterexample.scenario,
            picks=picks,
            violations=violations,
            minimized=True,
        )
