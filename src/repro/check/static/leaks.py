"""Round-state leak detection over the coordinator round drivers.

Two path obligations, both checked on the CFG of every function in the
protocol coordinator modules (``core/``, ``server/``):

``round-state-leak``
    A statement that **arms** a round -- sending ``GET_VOTE`` or ``PREPARE``
    registers :class:`~repro.server.commitment.RoundState` (and its round
    timer) on every cohort -- must reach a **release** on every path to
    every exit: a ``DECISION`` / ``COMMIT_DECISION`` / ``ROUND_FAILED`` /
    ``ORDERED_BLOCK`` send, publishing the block to the ordering service
    (``.publish(...)`` -- the ordered-delivery pipeline then owns delivery),
    or a call into a function that can do one of those.  A ``raise`` of
    ``ProtocolInvariantError`` is an allowed exit: it is a deliberate panic
    on a broken internal invariant, not a protocol outcome.

``sim-window-leak``
    The same obligation for the virtual-timeline window: a path that calls
    ``_begin_sim_block`` must reach ``_end_sim_block`` (directly or through
    a callee) before every exit, or the scheduler is left with an
    open-ended block task.

Release is *may-release*: a call counts when the callee can release on some
of its paths.  That is deliberate -- ``_failed_result(...,
notify_cohorts=False)`` intentionally keeps cohort state armed for the view
change to collect (the "failover collection" release of the issue), so a
must-release rule would reject the correct tree.  The callee fixpoint
resolves ``self.`` calls class-aware so the TFCommit and 2PC coordinators'
same-named helpers cannot vouch for each other (that precision is what lets
the ``pr3-round-failed-leak`` mutation self-test work: folding the mutation
flag kills only *tfcommit*'s ``ROUND_FAILED`` broadcast).

A third, structural rule needs no CFG: a module that stores per-round state
into ``self._rounds[...]`` must also contain a ``pop``/``del`` release site
for it (``round-state-structure``) -- the cohort side's arm/release pairing
is cross-message, so paths cannot prove it, but total absence of a release
is still statically visible.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Set

from repro.check.static.cfg import (
    EXIT_RAISE,
    Exit,
    Node,
    build_cfg,
    find_leak_path,
)
from repro.check.static.model import (
    Finding,
    FunctionDecl,
    SourceTree,
    call_message_types,
    call_name,
    iter_live,
)

#: Message types whose send arms per-round cohort state.
ARMING_TYPES = frozenset({"GET_VOTE", "PREPARE"})
#: Message types whose send releases it (decision apply / explicit abandon /
#: ordered delivery).
RELEASING_TYPES = frozenset({"DECISION", "COMMIT_DECISION", "ROUND_FAILED", "ORDERED_BLOCK"})
#: Handing the block to the ordering service transfers release
#: responsibility to the ordered-delivery path.
RELEASING_CALLS = frozenset({"publish"})

SIM_ARM = "_begin_sim_block"
SIM_RELEASE = "_end_sim_block"

#: Modules whose functions carry the path obligations.
COORDINATOR_PACKAGES = ("core", "server")

#: Raise exits that are deliberate panics, not leaks.
ALLOWED_RAISES = frozenset({"ProtocolInvariantError"})


def _stmt_scope(stmt: ast.AST) -> List[ast.AST]:
    """The expressions evaluated *at* a CFG node, excluding nested bodies.

    Compound statements (if/while/for/try/with) are CFG nodes whose bodies
    are separate nodes; attributing a body's calls to the header would let a
    release inside one branch satisfy paths through the other.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, ast.ExceptHandler,
                         ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]


def _stmt_calls(stmt: ast.AST, enabled: FrozenSet[str]) -> List[ast.Call]:
    """Live calls evaluated at one CFG node."""
    calls = []
    for node in iter_live(_stmt_scope(stmt), enabled):
        if isinstance(node, ast.Call):
            calls.append(node)
    return calls


def _sends_types(stmt: ast.AST, enabled: FrozenSet[str]) -> Set[str]:
    types: Set[str] = set()
    for call in _stmt_calls(stmt, enabled):
        if call_name(call) in ("send", "broadcast", "timed_broadcast",
                               "timed_exchange", "_broadcast_phase"):
            types.update(call_message_types(call))
    return types


class _ReleaseIndex:
    """Which functions can release round state / close the sim window."""

    def __init__(self, tree: SourceTree, enabled: FrozenSet[str]) -> None:
        self.tree = tree
        self.enabled = enabled
        self.round_releasers: Set[int] = set()
        self.sim_releasers: Set[int] = set()
        self._decls: List[FunctionDecl] = [
            decl for decls in tree.functions.values() for decl in decls
        ]
        self._ids = {id(decl.node): index for index, decl in enumerate(self._decls)}
        self._seed()
        self._propagate()

    def _decl_index(self, decl: FunctionDecl) -> int:
        return self._ids[id(decl.node)]

    def _seed(self) -> None:
        for index, decl in enumerate(self._decls):
            for node in iter_live(decl.node.body, self.enabled):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name in RELEASING_CALLS or (
                    name in ("send", "broadcast", "timed_broadcast",
                             "timed_exchange", "_broadcast_phase")
                    and RELEASING_TYPES & set(call_message_types(node))
                ):
                    self.round_releasers.add(index)
                if name == SIM_RELEASE:
                    self.sim_releasers.add(index)

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for index, decl in enumerate(self._decls):
                need_round = index not in self.round_releasers
                need_sim = index not in self.sim_releasers
                if not (need_round or need_sim):
                    continue
                for node in iter_live(decl.node.body, self.enabled):
                    if not isinstance(node, ast.Call):
                        continue
                    for callee in self.tree.resolve_call(node, decl.class_name):
                        callee_index = self._decl_index(callee)
                        if need_round and callee_index in self.round_releasers:
                            self.round_releasers.add(index)
                            need_round = False
                            changed = True
                        if need_sim and callee_index in self.sim_releasers:
                            self.sim_releasers.add(index)
                            need_sim = False
                            changed = True
                    if not (need_round or need_sim):
                        break

    def releases_round(self, decl: FunctionDecl) -> bool:
        return self._decl_index(decl) in self.round_releasers

    def releases_sim(self, decl: FunctionDecl) -> bool:
        return self._decl_index(decl) in self.sim_releasers


def _call_releases(
    tree: SourceTree,
    index: _ReleaseIndex,
    call: ast.Call,
    class_name: Optional[str],
    kind: str,
) -> bool:
    callees = tree.resolve_call(call, class_name)
    if kind == "round":
        return any(index.releases_round(callee) for callee in callees)
    return any(index.releases_sim(callee) for callee in callees)


def leak_findings(
    tree: SourceTree, enabled: FrozenSet[str] = frozenset()
) -> List[Finding]:
    index = _ReleaseIndex(tree, enabled)
    findings: List[Finding] = []
    for name in sorted(tree.functions):
        for decl in tree.functions[name]:
            if decl.module.package not in COORDINATOR_PACKAGES:
                continue
            findings.extend(_check_function(tree, index, decl, enabled))
    findings.extend(_structural_round_store(tree))
    return findings


def _check_function(
    tree: SourceTree,
    index: _ReleaseIndex,
    decl: FunctionDecl,
    enabled: FrozenSet[str],
) -> List[Finding]:
    # Cheap pre-scan: skip functions that never arm anything.
    arms_round = arms_sim = False
    for node in iter_live(decl.node.body, enabled):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name == SIM_ARM:
                arms_sim = True
            if name in ("send", "broadcast", "timed_broadcast",
                        "timed_exchange", "_broadcast_phase"):
                if ARMING_TYPES & set(call_message_types(node)):
                    arms_round = True
    if not (arms_round or arms_sim):
        return []

    cfg = build_cfg(decl.node, enabled)
    findings: List[Finding] = []

    def exit_allowed(exit_: Exit) -> bool:
        return exit_.kind == EXIT_RAISE and exit_.exception in ALLOWED_RAISES

    if arms_round:
        def is_round_release(node: Node) -> bool:
            if _sends_types(node.stmt, enabled) & RELEASING_TYPES:
                return True
            return any(
                call_name(call) in RELEASING_CALLS
                or _call_releases(tree, index, call, decl.class_name, "round")
                for call in _stmt_calls(node.stmt, enabled)
            )

        for node in cfg.nodes:
            armed = _sends_types(node.stmt, enabled) & ARMING_TYPES
            if not armed:
                continue
            leak = find_leak_path(cfg, node, is_round_release, exit_allowed)
            if leak is not None:
                exit_, trace = leak
                how = (
                    f"raise {exit_.exception or '<unknown>'}"
                    if exit_.kind == EXIT_RAISE
                    else "return"
                )
                findings.append(
                    Finding(
                        "leak",
                        "round-state-leak",
                        decl.module.relative,
                        node.line,
                        decl.qualname,
                        f"round armed by {'/'.join(sorted(armed))} send can "
                        f"exit via {how} without releasing cohort round state "
                        "(no decision / ROUND_FAILED / publish on the path)",
                        trace=tuple(trace),
                    )
                )

    if arms_sim:
        def is_sim_release(node: Node) -> bool:
            return any(
                call_name(call) == SIM_RELEASE
                or _call_releases(tree, index, call, decl.class_name, "sim")
                for call in _stmt_calls(node.stmt, enabled)
            )

        for node in cfg.nodes:
            if not any(
                call_name(call) == SIM_ARM
                for call in _stmt_calls(node.stmt, enabled)
            ):
                continue
            leak = find_leak_path(cfg, node, is_sim_release, exit_allowed)
            if leak is not None:
                exit_, trace = leak
                how = (
                    f"raise {exit_.exception or '<unknown>'}"
                    if exit_.kind == EXIT_RAISE
                    else "return"
                )
                findings.append(
                    Finding(
                        "leak",
                        "sim-window-leak",
                        decl.module.relative,
                        node.line,
                        decl.qualname,
                        f"virtual-timeline window opened by {SIM_ARM} can exit "
                        f"via {how} without reaching {SIM_RELEASE}",
                        trace=tuple(trace),
                    )
                )
    return findings


def _structural_round_store(tree: SourceTree) -> List[Finding]:
    """Modules that arm ``self._rounds[...]`` must also release somewhere."""
    findings: List[Finding] = []
    for relative in sorted(tree.modules):
        module = tree.modules[relative]
        if module.package not in COORDINATOR_PACKAGES:
            continue
        arm_line: Optional[int] = None
        released = False
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "_rounds"
                    ):
                        arm_line = arm_line or node.lineno
            elif isinstance(node, ast.Call):
                if (
                    call_name(node) == "pop"
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr == "_rounds"
                ):
                    released = True
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "_rounds"
                    ):
                        released = True
        if arm_line is not None and not released:
            findings.append(
                Finding(
                    "leak",
                    "round-state-structure",
                    relative,
                    arm_line,
                    "",
                    "module stores RoundState into self._rounds but contains "
                    "no pop/del release site",
                )
            )
    return findings
