"""Intra-procedural control-flow graphs with exception exits.

One :class:`CFG` per function: statement-level nodes, edges for
if/while/for/try/with/return/raise/break/continue, and two kinds of exit --
``return`` (explicit returns and falling off the end) and ``raise`` (an
explicit raise that no enclosing ``except`` of the same function catches,
labelled with the raised class name when it is syntactically evident).

Branch conditions are folded through :func:`~repro.check.static.model.fold_test`
at build time, so a mutation-guarded branch simply does not exist in the CFG
when its flag makes it statically dead.  Approximations, chosen to match how
the leak detector consumes the graph (see DESIGN.md section 11):

- Implicit exceptions (a call raising, a subscript KeyError-ing) do not
  create edges; only explicit ``raise`` statements and ``try`` routing do.
  Within a ``try`` body, every direct statement gets an edge to each handler
  to model "this statement raised".
- ``raise`` matching is by name: a handler catches when it names the raised
  class, names ``Exception``/``BaseException``, or is bare.  Unknown raise
  expressions (re-raise, variables) are treated as uncaught with an unknown
  class.
- ``return``/``raise``/``break``/``continue`` route through enclosing
  ``finally`` blocks (the finally body's entry node joins the path) before
  reaching their destination.

Path queries (:func:`find_leak_path`) are plain BFS over the node graph,
refusing to expand nodes the caller marks as releases; the returned node
path is the finding's arming->leaking trace.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.check.static.model import fold_test

#: Exit kinds.
EXIT_RETURN = "return"
EXIT_RAISE = "raise"


@dataclass
class Node:
    """One statement in the CFG."""

    index: int
    stmt: ast.AST
    line: int


@dataclass
class Exit:
    """One way control leaves the function."""

    kind: str  # EXIT_RETURN | EXIT_RAISE
    node: Node
    #: Raised class name for raise exits; None when not syntactically evident.
    exception: Optional[str] = None


@dataclass
class CFG:
    nodes: List[Node] = field(default_factory=list)
    succ: Dict[int, List[int]] = field(default_factory=dict)
    #: Index of the first real node, None for an empty body.
    entry: Optional[int] = None
    exits: List[Exit] = field(default_factory=list)

    def new_node(self, stmt: ast.AST) -> Node:
        node = Node(len(self.nodes), stmt, getattr(stmt, "lineno", 0))
        self.nodes.append(node)
        self.succ[node.index] = []
        return node

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.succ[src]:
            self.succ[src].append(dst)


@dataclass
class _Frame:
    """One enclosing try statement, as seen from inside its body."""

    handlers: List[Tuple[Optional[ast.AST], int]]  # (type expr, entry index)
    finally_entry: Optional[int]
    finally_exits: List[int]
    in_body: bool  # handlers apply only while inside the try body


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Attribute):
        return exc.attr
    if isinstance(exc, ast.Name):
        return exc.id
    return None


def _handler_catches(type_expr: Optional[ast.AST], raised: Optional[str]) -> bool:
    if type_expr is None:
        return True  # bare except
    names = []
    exprs = type_expr.elts if isinstance(type_expr, ast.Tuple) else [type_expr]
    for expr in exprs:
        if isinstance(expr, ast.Attribute):
            names.append(expr.attr)
        elif isinstance(expr, ast.Name):
            names.append(expr.id)
    if "Exception" in names or "BaseException" in names:
        return True
    return raised is not None and raised in names


class CFGBuilder:
    def __init__(self, enabled: FrozenSet[str] = frozenset()) -> None:
        self.enabled = enabled

    def build(self, func: ast.AST) -> CFG:
        self.cfg = CFG()
        #: Pending loop context: list of (continue-targets, break-collectors).
        self.loops: List[Tuple[int, List[int]]] = []
        self.frames: List[_Frame] = []
        entry_nodes, open_ends = self._block(func.body)
        self.cfg.entry = entry_nodes[0] if entry_nodes else None
        # Falling off the end of the body is an implicit return.
        for index in open_ends:
            self._register_exit(Exit(EXIT_RETURN, self.cfg.nodes[index]))
        return self.cfg

    # A block returns (entries, open_ends): the node(s) control enters the
    # block through, and the node(s) whose control falls through to whatever
    # follows the block.  Either may be empty (dead or fully-terminating
    # blocks).

    def _block(self, stmts: Sequence[ast.AST]) -> Tuple[List[int], List[int]]:
        entries: List[int] = []
        current_ends: List[int] = []
        first = True
        for stmt in stmts:
            stmt_entries, stmt_ends = self._statement(stmt)
            if not stmt_entries:
                continue
            if first:
                entries = stmt_entries
                first = False
            else:
                for end in current_ends:
                    for entry in stmt_entries:
                        self.cfg.edge(end, entry)
            current_ends = stmt_ends
            if not current_ends:
                # The rest of the block is unreachable.
                break
        return entries, current_ends

    def _statement(self, stmt: ast.AST) -> Tuple[List[int], List[int]]:
        if isinstance(stmt, ast.If):
            return self._if(stmt)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt)
        if isinstance(stmt, ast.Try):
            return self._try(stmt)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self.cfg.new_node(stmt)
            body_entries, body_ends = self._block(stmt.body)
            for entry in body_entries:
                self.cfg.edge(node.index, entry)
            return [node.index], body_ends if body_entries else [node.index]
        node = self.cfg.new_node(stmt)
        if isinstance(stmt, ast.Return):
            self._terminal(node, Exit(EXIT_RETURN, node))
            return [node.index], []
        if isinstance(stmt, ast.Raise):
            self._raise(node, stmt)
            return [node.index], []
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1][1].append(node.index)
            return [node.index], []
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.cfg.edge(node.index, self.loops[-1][0])
            return [node.index], []
        return [node.index], [node.index]

    def _if(self, stmt: ast.If) -> Tuple[List[int], List[int]]:
        node = self.cfg.new_node(stmt)
        verdict = fold_test(stmt.test, self.enabled)
        ends: List[int] = []
        if verdict is not False:
            body_entries, body_ends = self._block(stmt.body)
            for entry in body_entries:
                self.cfg.edge(node.index, entry)
            ends.extend(body_ends)
        if verdict is not True:
            if stmt.orelse:
                else_entries, else_ends = self._block(stmt.orelse)
                for entry in else_entries:
                    self.cfg.edge(node.index, entry)
                ends.extend(else_ends)
            else:
                ends.append(node.index)
        return [node.index], ends

    def _loop(self, stmt: ast.AST) -> Tuple[List[int], List[int]]:
        node = self.cfg.new_node(stmt)
        breaks: List[int] = []
        verdict = (
            fold_test(stmt.test, self.enabled)
            if isinstance(stmt, ast.While)
            else None
        )
        if verdict is not False:
            self.loops.append((node.index, breaks))
            body_entries, body_ends = self._block(stmt.body)
            self.loops.pop()
            for entry in body_entries:
                self.cfg.edge(node.index, entry)
            for end in body_ends:
                self.cfg.edge(end, node.index)
        # The loop head falls through when the iterable/condition is done
        # (even `while True` is treated as exitable: we prove leak-freedom on
        # exits, and a non-terminating loop has none).
        ends = [node.index] + breaks
        return [node.index], ends

    def _try(self, stmt: ast.Try) -> Tuple[List[int], List[int]]:
        finally_entries: List[int] = []
        finally_ends: List[int] = []
        if stmt.finalbody:
            finally_entries, finally_ends = self._block(stmt.finalbody)
        handler_info: List[Tuple[Optional[ast.AST], int]] = []
        handler_ends: List[int] = []
        for handler in stmt.handlers:
            head = self.cfg.new_node(handler)
            body_entries, body_ends = self._block(handler.body)
            for entry in body_entries:
                self.cfg.edge(head.index, entry)
            handler_info.append((handler.type, head.index))
            handler_ends.extend(body_ends if body_entries else [head.index])
        frame = _Frame(
            handlers=handler_info,
            finally_entry=finally_entries[0] if finally_entries else None,
            finally_exits=finally_ends,
            in_body=True,
        )
        self.frames.append(frame)
        body_start = len(self.cfg.nodes)
        body_entries, body_ends = self._block(stmt.body)
        # Any statement in the try body may raise implicitly: give each one
        # an edge to every handler.
        for node_index in range(body_start, len(self.cfg.nodes)):
            for _type_expr, handler_entry in handler_info:
                self.cfg.edge(node_index, handler_entry)
        frame.in_body = False
        else_ends: List[int] = []
        if stmt.orelse:
            else_entries, else_ends_ = self._block(stmt.orelse)
            for end in body_ends:
                for entry in else_entries:
                    self.cfg.edge(end, entry)
            else_ends = else_ends_ if else_entries else body_ends
            body_ends = []
        self.frames.pop()
        ends = body_ends + else_ends + handler_ends
        if finally_entries:
            for end in ends:
                self.cfg.edge(end, finally_entries[0])
            out_ends = finally_ends
        else:
            out_ends = ends
        entries = body_entries or finally_entries
        return entries, out_ends

    # -- terminal routing -------------------------------------------------------

    def _enclosing_finallies(self) -> List[int]:
        return [
            frame.finally_entry
            for frame in reversed(self.frames)
            if frame.finally_entry is not None
        ]

    def _terminal(self, node: Node, exit_: Exit) -> None:
        """Route a return/uncaught raise through enclosing finally blocks."""
        finallies = self._enclosing_finallies()
        if finallies:
            self.cfg.edge(node.index, finallies[0])
            # The finally body's own exits were already wired when its try
            # was built; for exit routing we conservatively register the
            # exit at the terminal statement itself (the finally runs, then
            # the exit happens -- release-wise the finally's nodes are on
            # the path via the edge above).
        self._register_exit(exit_)

    def _register_exit(self, exit_: Exit) -> None:
        self.cfg.exits.append(exit_)

    def _raise(self, node: Node, stmt: ast.Raise) -> None:
        raised = _raised_name(stmt)
        for frame in reversed(self.frames):
            if not frame.in_body:
                continue
            for type_expr, handler_entry in frame.handlers:
                if _handler_catches(type_expr, raised):
                    self.cfg.edge(node.index, handler_entry)
                    return
        self._terminal(node, Exit(EXIT_RAISE, node, raised))


def build_cfg(func: ast.AST, enabled: FrozenSet[str] = frozenset()) -> CFG:
    return CFGBuilder(enabled).build(func)


def find_leak_path(
    cfg: CFG,
    arm: Node,
    is_release: Callable[[Node], bool],
    exit_allowed: Callable[[Exit], bool],
) -> Optional[Tuple[Exit, List[int]]]:
    """The shortest arm->exit path avoiding every release node, if any.

    Returns ``(offending exit, [line numbers])`` or ``None`` when every
    path from ``arm`` hits a release (or an allowed exit) first.
    """
    exits_by_node: Dict[int, List[Exit]] = {}
    for exit_ in cfg.exits:
        exits_by_node.setdefault(exit_.node.index, []).append(exit_)

    parents: Dict[int, Optional[int]] = {arm.index: None}
    queue: List[int] = [arm.index]
    while queue:
        current = queue.pop(0)
        node = cfg.nodes[current]
        if current != arm.index and is_release(node):
            continue  # the path released; stop exploring through it
        for exit_ in exits_by_node.get(current, []):
            if exit_allowed(exit_):
                continue
            lines: List[int] = []
            walk: Optional[int] = current
            while walk is not None:
                lines.append(cfg.nodes[walk].line)
                walk = parents[walk]
            return exit_, list(reversed(lines))
        for successor in cfg.succ.get(current, []):
            if successor not in parents:
                parents[successor] = current
                queue.append(successor)
    return None
