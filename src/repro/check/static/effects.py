"""Exception-effect checking for handler-reachable protocol code.

The delivery contract: :meth:`repro.net.network.Network.send` invokes the
recipient's ``handle``, and whatever escapes it crashes the *sender's* round
rather than surfacing as a protocol outcome.  Only the :class:`FidesError`
hierarchy is part of that contract (``ProtocolError`` refusals,
``UnreachableError`` synthesized as timeouts, ``ProtocolInvariantError``
panics); builtin exceptions escaping mean an unplanned crash -- the PR 7
2PC ``KeyError`` bug class.  Four rules:

``broad-except``
    ``except Exception`` / ``except BaseException`` / bare ``except`` in the
    protocol packages masks programming bugs (and swallowed
    ``ProtocolInvariantError`` panics).  Narrow it to the errors the site
    expects.

``unguarded-subscript``
    ``resp["key"]`` on a **response map** -- the dict returned by
    ``timed_broadcast`` / ``timed_exchange`` / ``_broadcast_phase`` -- or on
    values iterated from one, without a prior guard.  Crashed recipients
    yield a synthesized response carrying only ``{server_id, ok,
    unreachable, timed_out, reason, compute_time}`` (:data:`SAFE_KEYS`), so
    any other key KeyErrors exactly when a cohort dies mid-round.  A guard
    is a statically-live ``if`` between the map's binding and the subscript
    whose test reads the map (or a value derived from it) and whose body
    exits the scope (return/raise/continue/break) -- the shape of the
    phase-1 unreachable checks.

``unguarded-minmax``
    ``max()`` / ``min()`` over a response map without ``default=``:
    ``ValueError`` on the empty map a fully-crashed cohort set produces.

``escaping-raise``
    An explicit ``raise`` of a builtin exception in a function reachable
    from the dispatch table (name-based closure over the call graph,
    ``self.`` calls resolved class-aware) and not caught within the raising
    function.  ``FidesError`` subclasses are the protocol's error surface
    and allowed; ``NotImplementedError`` marks abstract interfaces and is
    exempt.

The response-map and raise rules both run under mutation folding, so the
``pr7-2pc-vote-keyerror`` self-test works by statically killing the phase-1
guard: the tally subscripts become unguarded, exactly the shipped bug.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.check.static.model import (
    Finding,
    FunctionDecl,
    SourceTree,
    call_name,
    fold_test,
    iter_live,
)

#: Packages whose code the broad-except rule covers (mirrors lint's set).
PROTOCOL_PACKAGES = (
    "core", "server", "net", "ledger", "recovery",
    "storage", "txn", "crypto", "sim",
)

#: Packages whose handler-reachable functions must not raise builtins.
RAISE_PACKAGES = PROTOCOL_PACKAGES

#: Calls that return a response map (server id -> response dict).
RESPONSE_SOURCES = frozenset(
    {"timed_broadcast", "timed_exchange", "_broadcast_phase", "_equivocate_challenge"}
)

#: Keys present on *every* response, including the synthesized unreachable
#: one (see ``timed_exchange``); subscripting them can never KeyError.
SAFE_KEYS = frozenset(
    {"ok", "server_id", "reason", "compute_time", "unreachable", "timed_out"}
)

#: Builtin exceptions whose escape from a handler is an unplanned crash.
BUILTIN_EXCEPTIONS = frozenset({
    "Exception", "BaseException", "ValueError", "KeyError", "TypeError",
    "IndexError", "LookupError", "AttributeError", "RuntimeError",
    "ArithmeticError", "ZeroDivisionError", "OverflowError", "StopIteration",
    "AssertionError", "OSError",
})


def effect_findings(
    tree: SourceTree, enabled: FrozenSet[str] = frozenset()
) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(_broad_excepts(tree, enabled))
    findings.extend(_response_map_rules(tree, enabled))
    findings.extend(_escaping_raises(tree, enabled))
    return findings


# -- broad except ------------------------------------------------------------------


def _broad_excepts(tree: SourceTree, enabled: FrozenSet[str]) -> List[Finding]:
    findings: List[Finding] = []
    for relative in sorted(tree.modules):
        module = tree.modules[relative]
        if module.package not in PROTOCOL_PACKAGES:
            continue
        for node in iter_live([module.tree], enabled):
            if not isinstance(node, ast.ExceptHandler):
                continue
            names = _handler_names(node.type)
            if node.type is None or names & {"Exception", "BaseException"}:
                caught = "bare except" if node.type is None else (
                    "except " + "/".join(sorted(names & {"Exception", "BaseException"}))
                )
                findings.append(
                    Finding(
                        "effects",
                        "broad-except",
                        relative,
                        node.lineno,
                        "",
                        f"{caught} in a protocol package masks programming "
                        "bugs; catch the specific FidesError subclasses the "
                        "site expects",
                    )
                )
    return findings


def _handler_names(type_expr: Optional[ast.AST]) -> Set[str]:
    if type_expr is None:
        return set()
    exprs = type_expr.elts if isinstance(type_expr, ast.Tuple) else [type_expr]
    names = set()
    for expr in exprs:
        if isinstance(expr, ast.Attribute):
            names.add(expr.attr)
        elif isinstance(expr, ast.Name):
            names.add(expr.id)
    return names


# -- response-map hazards ----------------------------------------------------------


class _RespTracker:
    """Per-function dataflow from response-map bindings to uses."""

    def __init__(self) -> None:
        #: tracked name -> (root response map name, binding line)
        self.tracked: Dict[str, Tuple[str, int]] = {}
        #: root name -> guard lines
        self.guards: Dict[str, List[int]] = {}

    def bind_root(self, name: str, line: int) -> None:
        self.tracked[name] = (name, line)

    def derive(self, name: str, root: str, line: int) -> None:
        self.tracked[name] = (root, line)

    def root_of(self, name: str) -> Optional[str]:
        entry = self.tracked.get(name)
        return entry[0] if entry else None

    def names_in(self, expr: ast.AST) -> Set[str]:
        return {
            node.id
            for node in ast.walk(expr)
            if isinstance(node, ast.Name) and node.id in self.tracked
        }

    def add_guard(self, roots: Set[str], line: int) -> None:
        for root in roots:
            self.guards.setdefault(root, []).append(line)

    def guarded(self, root: str, binding_line: int, use_line: int) -> bool:
        return any(
            binding_line < guard <= use_line for guard in self.guards.get(root, [])
        )


def _response_map_rules(tree: SourceTree, enabled: FrozenSet[str]) -> List[Finding]:
    findings: List[Finding] = []
    for name in sorted(tree.functions):
        for decl in tree.functions[name]:
            if decl.module.package not in PROTOCOL_PACKAGES:
                continue
            findings.extend(_check_response_maps(decl, enabled))
    return findings


def _check_response_maps(
    decl: FunctionDecl, enabled: FrozenSet[str]
) -> List[Finding]:
    tracker = _RespTracker()
    findings: List[Finding] = []
    module = decl.module

    def exits_scope(body: Sequence[ast.AST]) -> bool:
        return any(
            isinstance(node, (ast.Return, ast.Raise, ast.Continue, ast.Break))
            for stmt in body
            for node in iter_live([stmt], enabled)
        )

    def handle_comprehension(node: ast.AST) -> None:
        for gen in node.generators:
            roots = tracker.names_in(gen.iter)
            if roots and isinstance(gen.target, ast.Name):
                root = tracker.root_of(next(iter(roots)))
                tracker.derive(gen.target.id, root, node.lineno)
            elif roots and isinstance(gen.target, ast.Tuple):
                root = tracker.root_of(next(iter(roots)))
                for element in gen.target.elts:
                    if isinstance(element, ast.Name):
                        tracker.derive(element.id, root, node.lineno)

    def check_subscript(node: ast.Subscript) -> None:
        base = node.value
        # votes[sid]["key"] -> treat the chain root as the tracked name.
        while isinstance(base, ast.Subscript):
            base = base.value
        if not isinstance(base, ast.Name):
            return
        root = tracker.root_of(base.id)
        if root is None:
            return
        key = node.slice
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return
        if key.value in SAFE_KEYS:
            return
        binding_line = tracker.tracked[base.id][1]
        root_binding_line = tracker.tracked[root][1] if root in tracker.tracked else binding_line
        if tracker.guarded(root, root_binding_line, node.lineno):
            return
        findings.append(
            Finding(
                "effects",
                "unguarded-subscript",
                module.relative,
                node.lineno,
                decl.qualname,
                f"subscript [{key.value!r}] on response map {root!r} has no "
                "preceding unreachable/refused guard; a crashed recipient's "
                "synthesized response KeyErrors here",
            )
        )

    def check_minmax(node: ast.Call) -> None:
        if call_name(node) not in ("max", "min"):
            return
        if any(kw.arg == "default" for kw in node.keywords):
            return
        if len(node.args) != 1:
            return
        if not tracker.names_in(node.args[0]):
            return
        findings.append(
            Finding(
                "effects",
                "unguarded-minmax",
                module.relative,
                node.lineno,
                decl.qualname,
                f"{call_name(node)}() over a response map without default=; "
                "ValueError when every recipient is unreachable",
            )
        )

    for node in iter_live(decl.node.body, enabled):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            source = call_name(node.value)
            if source in RESPONSE_SOURCES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracker.bind_root(target.id, node.lineno)
                continue
        if isinstance(node, ast.Assign):
            # Comprehension targets inside the value are local bindings, not
            # reads of a previously-tracked name with the same identifier.
            roots = tracker.names_in(node.value) - _comp_targets(node.value)
            if roots:
                root = tracker.root_of(sorted(roots)[0])
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracker.derive(target.id, root, node.lineno)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            roots = tracker.names_in(node.iter)
            if roots:
                root = tracker.root_of(next(iter(roots)))
                targets = (
                    node.target.elts
                    if isinstance(node.target, ast.Tuple)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        tracker.derive(target.id, root, node.lineno)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            handle_comprehension(node)
        if isinstance(node, ast.If):
            test_roots = {
                tracker.root_of(name) for name in tracker.names_in(node.test)
            } - {None}
            if test_roots and fold_test(node.test, enabled) is not False:
                if exits_scope(node.body):
                    tracker.add_guard(test_roots, node.lineno)
        if isinstance(node, ast.Subscript):
            check_subscript(node)
        if isinstance(node, ast.Call):
            check_minmax(node)
    return findings


def _comp_targets(expr: ast.AST) -> Set[str]:
    """Names bound as comprehension targets anywhere inside ``expr``."""
    names: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                targets = (
                    gen.target.elts
                    if isinstance(gen.target, ast.Tuple)
                    else [gen.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


# -- escaping raises ---------------------------------------------------------------


def _dispatch_root_decls(tree: SourceTree) -> List[FunctionDecl]:
    """The handler methods named in a ``handle`` dispatch table, plus ``handle``."""
    roots: List[FunctionDecl] = []
    for decls in tree.functions.values():
        for decl in decls:
            if decl.name != "handle":
                continue
            roots.append(decl)
            for node in ast.walk(decl.node):
                if isinstance(node, ast.Dict):
                    for value in node.values:
                        if isinstance(value, ast.Attribute):
                            if decl.class_name:
                                roots.extend(
                                    tree.resolve_method(decl.class_name, value.attr)
                                )
                            else:
                                roots.extend(tree.functions.get(value.attr, []))
    return roots


def _reachable_decls(
    tree: SourceTree, enabled: FrozenSet[str]
) -> Set[int]:
    """ids of function nodes reachable from the dispatch roots (name-based)."""
    queue = _dispatch_root_decls(tree)
    seen: Set[int] = set()
    reachable: Set[int] = set()
    while queue:
        decl = queue.pop()
        key = id(decl.node)
        if key in seen:
            continue
        seen.add(key)
        reachable.add(key)
        for node in iter_live(decl.node.body, enabled):
            if isinstance(node, ast.Call):
                queue.extend(tree.resolve_call(node, decl.class_name))
    return reachable


def _escaping_raises(tree: SourceTree, enabled: FrozenSet[str]) -> List[Finding]:
    reachable = _reachable_decls(tree, enabled)
    findings: List[Finding] = []
    for name in sorted(tree.functions):
        for decl in tree.functions[name]:
            if decl.module.package not in RAISE_PACKAGES:
                continue
            if id(decl.node) not in reachable:
                continue
            findings.extend(_check_raises(decl, enabled))
    return findings


def _check_raises(decl: FunctionDecl, enabled: FrozenSet[str]) -> List[Finding]:
    findings: List[Finding] = []

    def caught_inside(raise_node: ast.Raise, raised: str) -> bool:
        for node in ast.walk(decl.node):
            if not isinstance(node, ast.Try):
                continue
            if not _contains(node.body, raise_node):
                continue
            for handler in node.handlers:
                names = _handler_names(handler.type)
                if handler.type is None or raised in names or names & {
                    "Exception", "BaseException"
                }:
                    return True
        return False

    for node in iter_live(decl.node.body, enabled):
        if not isinstance(node, ast.Raise):
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        raised = None
        if isinstance(exc, ast.Attribute):
            raised = exc.attr
        elif isinstance(exc, ast.Name):
            raised = exc.id
        if raised is None or raised not in BUILTIN_EXCEPTIONS:
            continue
        if caught_inside(node, raised):
            continue
        findings.append(
            Finding(
                "effects",
                "escaping-raise",
                decl.module.relative,
                node.lineno,
                decl.qualname,
                f"handler-reachable function raises builtin {raised}; raise "
                "a FidesError subclass so the failure stays inside the "
                "protocol's error contract",
            )
        )
    return findings


def _contains(body: Sequence[ast.AST], target: ast.AST) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if node is target:
                return True
    return False
