"""Whole-program static protocol analyzer (``python -m repro.check.static``).

The static counterpart to the PR 6 model checker: where the explorer proves
properties of *runs it can reach*, this package proves three properties of
*every path in the source*, before anything executes:

- :mod:`repro.check.static.flowgraph` -- message-flow totality: every sent
  ``MessageType`` has a dispatch entry, every dispatch entry a sender, every
  enum member is reachable, every ``to_wire`` class has a strict decoder.
- :mod:`repro.check.static.leaks` -- round-state leaks: every path that arms
  per-round state (``GET_VOTE``/``PREPARE`` send, virtual-timeline window)
  reaches a release on every exit, over the CFGs of
  :mod:`repro.check.static.cfg`.
- :mod:`repro.check.static.effects` -- exception effects: handler-reachable
  code must not let non-``FidesError`` exceptions escape (response-map
  subscripts, un-defaulted ``max``/``min``, broad excepts, builtin raises).

Findings are :class:`~repro.check.static.model.Finding` values, reported via
:mod:`repro.check.static.report` against the checked-in ``baseline.json``.
The analyses run pure-AST (no package import needed) and compose with the
mutation registry through static branch folding -- see
:func:`~repro.check.static.model.fold_test` and the self-tests in
``tests/check/test_static_selftest.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import FrozenSet, List, Optional

from repro.check.static.effects import effect_findings
from repro.check.static.flowgraph import flow_findings
from repro.check.static.leaks import leak_findings
from repro.check.static.model import Finding, SourceTree

__all__ = ["Finding", "SourceTree", "run_analyses"]


def run_analyses(
    tree: SourceTree,
    mutations: FrozenSet[str] = frozenset(),
    wire_registry: Optional[Path] = None,
) -> List[Finding]:
    """Run all three analyses; suppressed findings are dropped here."""
    findings: List[Finding] = []
    findings.extend(flow_findings(tree, wire_registry=wire_registry))
    findings.extend(leak_findings(tree, mutations))
    findings.extend(effect_findings(tree, mutations))
    kept = []
    for finding in findings:
        module = tree.modules.get(finding.path)
        if module is not None and module.allows(finding.line, finding.rule):
            continue
        kept.append(finding)
    return sorted(kept, key=lambda f: (f.path, f.line, f.rule, f.message))
