"""Versioned JSON report and baseline diffing for the static analyzer.

Follows the :mod:`repro.bench.schema` conventions: a ``schema_version``
integer, the git ``commit`` the report describes, and a validator returning
a list of problems.  The report is the CI artifact; the **baseline**
(``check/static/baseline.json``, checked in next to this module) is the
accepted-findings ledger CI diffs new reports against:

- a finding whose :attr:`~repro.check.static.model.Finding.key` appears in
  the baseline is *accepted debt* -- reported, but not failing;
- any other finding is **new** and fails the run;
- a baseline entry no finding matches anymore is *stale* and reported so
  paid-off debt gets deleted rather than silently shadowing a future
  regression with the same key.

``python -m repro.check.static --update-baseline`` rewrites the baseline to
exactly the current findings (for intentional changes, reviewed like any
diff).  The shipped baseline is empty: the tree is clean, and the mechanism
exists so a future PR can land an analyzer improvement and its fixes in
separate reviewable steps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Sequence

from repro.bench.schema import current_commit
from repro.check.static.model import Finding

SCHEMA_VERSION = 1
TOOL_NAME = "repro.check.static"


def default_baseline_path() -> Path:
    return Path(__file__).resolve().parent / "baseline.json"


def load_baseline(path: Path) -> FrozenSet[str]:
    """The accepted finding keys; a missing file means an empty baseline."""
    if not path.exists():
        return frozenset()
    data = json.loads(path.read_text())
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: baseline schema_version {data.get('schema_version')!r} "
            f"!= {SCHEMA_VERSION}"
        )
    suppressions = data.get("suppressions", [])
    if not isinstance(suppressions, list) or not all(
        isinstance(item, str) for item in suppressions
    ):
        raise ValueError(f"{path}: 'suppressions' must be a list of finding keys")
    return frozenset(suppressions)


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    data = {
        "schema_version": SCHEMA_VERSION,
        "tool": TOOL_NAME,
        "commit": current_commit(),
        "suppressions": sorted({finding.key for finding in findings}),
    }
    path.write_text(json.dumps(data, indent=2) + "\n")


def build_report(
    findings: Sequence[Finding],
    root: Path,
    mutations: Iterable[str],
    baseline: FrozenSet[str],
) -> Dict[str, object]:
    keys = {finding.key for finding in findings}
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": TOOL_NAME,
        "commit": current_commit(),
        "root": str(root),
        "mutations": sorted(mutations),
        "counts": counts,
        "findings": [finding.to_json() for finding in findings],
        "new_findings": sorted(keys - baseline),
        "baselined_findings": sorted(keys & baseline),
        "stale_baseline_entries": sorted(baseline - keys),
    }


def validate_report(report: Dict[str, object]) -> List[str]:
    """Return the list of schema problems (empty = valid)."""
    problems: List[str] = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version {report.get('schema_version')!r} != {SCHEMA_VERSION}"
        )
    for key in ("tool", "commit", "root", "mutations", "counts",
                "findings", "new_findings"):
        if key not in report:
            problems.append(f"missing key {key!r}")
    for entry in report.get("findings", []):
        if not isinstance(entry, dict) or "key" not in entry or "rule" not in entry:
            problems.append(f"malformed finding entry: {entry!r}")
            break
    return problems
