"""Shared AST model for the whole-program protocol analyzer.

Everything in :mod:`repro.check.static` works on this layer:

- :class:`SourceTree` parses every module under the analyzed root exactly
  once and indexes functions, classes, and class hierarchies **by name** so
  the analyses can resolve calls without importing the package (the CI job
  checks out sources only, mirroring :mod:`repro.check.lint`).
- :class:`Finding` is the one result type all three analyses emit; its
  :attr:`Finding.key` deliberately excludes line numbers so baseline entries
  survive pure line drift.
- :func:`fold_test` statically evaluates branch conditions over
  ``mutation_enabled("...")`` calls given the set of enabled mutation flags.
  This is how static analysis composes with the runtime mutation registry
  (:mod:`repro.check.mutations`): with a mutation *off* its guarded buggy
  branch is statically dead and never reported; with it *on* the fixed
  branch dies instead and the historical bug resurfaces as a finding.
- :func:`iter_live` walks an AST yielding only nodes reachable under that
  folding, so every rule prunes statically-dead branches the same way.

Call resolution is deliberately optimistic: ``self.m(...)`` resolves through
the enclosing class and its (name-matched) bases, ``f(...)`` to every
module-level ``f`` plus constructors of classes named ``f``, and
``obj.m(...)`` to every function named ``m`` anywhere in the tree.  That
over-approximates reachability -- safe for the escape checker (it may flag
too much, never too little) -- while the class-aware ``self.`` rule keeps
same-named helpers (e.g. the two ``_failed_result`` methods) from masking
each other in the leak detector's releasing-callee fixpoint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

#: Trailing-comment marker suppressing a finding on its line.  Bare form
#: (``# static: allow``) suppresses every rule; ``# static: allow[rule]``
#: (comma-separable) suppresses only the named rule(s).
ALLOW_MARKER = "# static: allow"


@dataclass(frozen=True)
class Finding:
    """One analyzer result.

    ``trace`` carries the arming->leaking statement path (source line
    numbers) for leak findings; empty elsewhere.
    """

    analysis: str  # "flow" | "leak" | "effects"
    rule: str
    path: str  # module path relative to the analyzed root (posix)
    line: int
    function: str  # qualified name, "" for module-level findings
    message: str  # line-number free: baseline keys must survive drift
    trace: Tuple[int, ...] = ()

    @property
    def key(self) -> str:
        """Baseline identity, stable across pure line-number churn."""
        return f"{self.rule}::{self.path}::{self.function}::{self.message}"

    def __str__(self) -> str:
        where = f"{self.path}:{self.line}"
        subject = f" {self.function}:" if self.function else ""
        rendered = f"{where}: [{self.rule}]{subject} {self.message}"
        if self.trace:
            rendered += " (path: " + " -> ".join(str(line) for line in self.trace) + ")"
        return rendered

    def to_json(self) -> Dict[str, object]:
        return {
            "analysis": self.analysis,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "message": self.message,
            "trace": list(self.trace),
            "key": self.key,
        }


@dataclass
class FunctionDecl:
    """One function or method definition, with its lexical class context."""

    name: str
    qualname: str
    module: "SourceModule"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None


@dataclass
class ClassDecl:
    name: str
    module: "SourceModule"
    node: ast.ClassDef
    bases: Tuple[str, ...]
    methods: Dict[str, FunctionDecl]


class SourceModule:
    """One parsed source file."""

    def __init__(self, path: Path, relative: str, source: str) -> None:
        self.path = path
        self.relative = relative
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))

    @property
    def package(self) -> str:
        """First path component under the root ('' for top-level modules)."""
        parts = self.relative.split("/")
        return parts[0] if len(parts) > 1 else ""

    def allows(self, line: int, rule: str) -> bool:
        """Whether ``# static: allow`` on ``line`` suppresses ``rule``."""
        try:
            text = self.lines[line - 1]
        except IndexError:
            return False
        marker = text.find(ALLOW_MARKER)
        if marker < 0:
            return False
        rest = text[marker + len(ALLOW_MARKER):].strip()
        if rest.startswith("["):
            end = rest.find("]")
            if end < 0:
                return False
            rules = {item.strip() for item in rest[1:end].split(",")}
            return rule in rules
        return True


class SourceTree:
    """Every module under one root, parsed once and indexed by name."""

    def __init__(self, root: Path) -> None:
        self.root = root.resolve()
        self.modules: Dict[str, SourceModule] = {}
        self.functions: Dict[str, List[FunctionDecl]] = {}
        self.classes: Dict[str, List[ClassDecl]] = {}
        self.syntax_errors: List[Finding] = []
        for path in sorted(self.root.rglob("*.py")):
            relative = path.relative_to(self.root).as_posix()
            try:
                module = SourceModule(path, relative, path.read_text())
            except SyntaxError as exc:
                self.syntax_errors.append(
                    Finding("flow", "syntax", relative, exc.lineno or 0, "", str(exc.msg))
                )
                continue
            self.modules[relative] = module
            self._collect(module)

    # -- declaration indexing ---------------------------------------------------

    def _collect(self, module: SourceModule) -> None:
        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}"
                    decl = FunctionDecl(child.name, qualname, module, child, None)
                    self.functions.setdefault(child.name, []).append(decl)
                    visit(child, f"{qualname}.")
                elif isinstance(child, ast.ClassDef):
                    bases = tuple(
                        name for name in (_terminal_name(base) for base in child.bases)
                        if name is not None
                    )
                    methods: Dict[str, FunctionDecl] = {}
                    for item in child.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            qualname = f"{prefix}{child.name}.{item.name}"
                            decl = FunctionDecl(
                                item.name, qualname, module, item, child.name
                            )
                            methods[item.name] = decl
                            self.functions.setdefault(item.name, []).append(decl)
                            visit(item, f"{qualname}.")
                    self.classes.setdefault(child.name, []).append(
                        ClassDecl(child.name, module, child, bases, methods)
                    )
                else:
                    visit(child, prefix)

        visit(module.tree, "")

    # -- name-based call resolution ---------------------------------------------

    def resolve_method(self, class_name: str, method: str) -> List[FunctionDecl]:
        """Methods named ``method`` on ``class_name`` or its named bases.

        A class that defines the method shadows its bases (those bases are
        not searched further); unrelated same-named classes all contribute.
        """
        found: List[FunctionDecl] = []
        seen = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for decl in self.classes.get(current, []):
                if method in decl.methods:
                    found.append(decl.methods[method])
                else:
                    queue.extend(decl.bases)
        return found

    def resolve_call(
        self, call: ast.Call, enclosing_class: Optional[str] = None
    ) -> List[FunctionDecl]:
        """Every declaration a call might target (optimistic, name-based)."""
        func = call.func
        if isinstance(func, ast.Attribute):
            name = func.attr
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" and enclosing_class:
                decls = self.resolve_method(enclosing_class, name)
                if decls:
                    return decls
            if (
                isinstance(base, ast.Call)
                and isinstance(base.func, ast.Name)
                and base.func.id == "super"
                and enclosing_class
            ):
                decls = []
                for cls in self.classes.get(enclosing_class, []):
                    for base_name in cls.bases:
                        decls.extend(self.resolve_method(base_name, name))
                if decls:
                    return decls
            return list(self.functions.get(name, []))
        if isinstance(func, ast.Name):
            decls = list(self.functions.get(func.id, []))
            for cls in self.classes.get(func.id, []):
                for ctor in ("__init__", "__post_init__"):
                    if ctor in cls.methods:
                        decls.append(cls.methods[ctor])
            return decls
        return []


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost name of a ``Name`` / ``a.b.c`` chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The terminal callee name of a call (``f`` for both ``f()``/``o.f()``)."""
    return _terminal_name(node.func)


def call_message_types(node: ast.Call) -> List[str]:
    """Every ``MessageType.X`` attribute appearing in a call's arguments."""
    types: List[str] = []
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        for sub in ast.walk(arg):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "MessageType"
            ):
                types.append(sub.attr)
    return types


# -- mutation folding -------------------------------------------------------------


def fold_test(node: ast.AST, enabled: FrozenSet[str]) -> Optional[bool]:
    """Statically evaluate a branch condition; ``None`` when unknown.

    Knows literals, ``not``/``and``/``or`` composition, and
    ``mutation_enabled("name")`` calls against the enabled set.  ``X and
    <False>`` folds to ``False`` (the branch is dead) even when ``X`` is
    unknown, which is exactly the shape of the in-tree mutation guards.
    """
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (bool, int, str, bytes, float)) or node.value is None:
            return bool(node.value)
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        inner = fold_test(node.operand, enabled)
        return None if inner is None else not inner
    if isinstance(node, ast.BoolOp):
        verdicts = [fold_test(value, enabled) for value in node.values]
        if isinstance(node.op, ast.And):
            if any(verdict is False for verdict in verdicts):
                return False
            if all(verdict is True for verdict in verdicts):
                return True
            return None
        if any(verdict is True for verdict in verdicts):
            return True
        if all(verdict is False for verdict in verdicts):
            return False
        return None
    if isinstance(node, ast.Call) and call_name(node) == "mutation_enabled":
        if (
            len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            return node.args[0].value in enabled
    return None


def iter_live(
    roots: Sequence[ast.AST], enabled: FrozenSet[str]
) -> Iterator[ast.AST]:
    """Walk ``roots`` yielding only nodes reachable under mutation folding.

    Branches whose condition folds to a constant contribute only the taken
    side; the condition expression itself is always yielded (it evaluates at
    runtime regardless of which way it folds).
    """
    stack: List[ast.AST] = list(reversed(list(roots)))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.If):
            verdict = fold_test(node.test, enabled)
            stack.append(node.test)
            if verdict is not True:
                stack.extend(reversed(node.orelse))
            if verdict is not False:
                stack.extend(reversed(node.body))
            continue
        if isinstance(node, ast.IfExp):
            verdict = fold_test(node.test, enabled)
            stack.append(node.test)
            if verdict is not True:
                stack.append(node.orelse)
            if verdict is not False:
                stack.append(node.body)
            continue
        if isinstance(node, ast.While):
            verdict = fold_test(node.test, enabled)
            stack.append(node.test)
            stack.extend(reversed(node.orelse))
            if verdict is not False:
                stack.extend(reversed(node.body))
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))
