"""CLI for the whole-program static protocol analyzer.

::

    python -m repro.check.static                      # human-readable, exit 1 on new findings
    python -m repro.check.static --json report.json   # also write the CI artifact
    python -m repro.check.static --json -             # report JSON on stdout
    python -m repro.check.static --mutation pr3-round-failed-leak
    python -m repro.check.static --update-baseline    # accept current findings

Exit status is 1 exactly when a finding is *not* covered by the baseline
(see :mod:`repro.check.static.report`); ``--update-baseline`` rewrites the
baseline and exits 0.  ``--mutation`` folds the named mutation flag(s) on,
re-introducing the guarded historical bug statically -- the analyzer's
self-test mechanism, never used in CI gating.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.check.mutations import MUTATIONS
from repro.check.static import run_analyses
from repro.check.static.model import SourceTree
from repro.check.static.report import (
    build_report,
    default_baseline_path,
    load_baseline,
    write_baseline,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.static",
        description=(
            "Message-flow totality, round-state leak, and exception-effect "
            "checks over src/repro."
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package tree to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--wire-registry",
        type=Path,
        default=None,
        help="wire.py holding WIRE_DECODERS (default: <root>/recovery/wire.py)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="accepted-findings ledger (default: check/static/baseline.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to exactly the current findings and exit 0",
    )
    parser.add_argument(
        "--mutation",
        action="append",
        default=[],
        choices=sorted(MUTATIONS),
        help="fold this mutation flag ON (repeatable; analyzer self-test)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the JSON report to PATH ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    if args.root is not None:
        root = args.root
    else:
        from repro.check.lint import default_root

        root = default_root()
    tree = SourceTree(root)
    mutations = frozenset(args.mutation)
    findings = run_analyses(tree, mutations, wire_registry=args.wire_registry)

    baseline_path = args.baseline or default_baseline_path()
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"repro.check.static: wrote {len(findings)} finding key(s) to "
            f"{baseline_path}"
        )
        return 0

    baseline = load_baseline(baseline_path)
    report = build_report(findings, root, mutations, baseline)
    if args.json == "-":
        print(json.dumps(report, indent=2))
    elif args.json is not None:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")

    if args.json != "-":
        for finding in findings:
            marker = "" if finding.key not in baseline else " [baselined]"
            print(f"{finding}{marker}")
        stale = report["stale_baseline_entries"]
        for key in stale:
            print(f"stale baseline entry (no matching finding): {key}")
        new = report["new_findings"]
        summary = (
            f"repro.check.static: {len(findings)} finding(s), "
            f"{len(new)} new, {len(stale)} stale baseline entr(y/ies) ({root})"
            if findings or stale
            else f"repro.check.static: clean ({root})"
        )
        print(summary)
    return 1 if report["new_findings"] else 0


if __name__ == "__main__":
    sys.exit(main())
