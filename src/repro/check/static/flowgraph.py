"""Message-flow graph extraction and totality checking.

Statically collects every **send site** -- a ``send`` / ``broadcast`` /
``timed_broadcast`` / ``timed_exchange`` / ``_broadcast_phase`` call (or an
``Envelope(...)`` construction) carrying a literal ``MessageType.X`` -- and
the **dispatch table** of ``FidesServer.handle`` (the dict literal mapping
``MessageType.X`` to ``self._on_x``), then checks totality:

``unhandled-message``
    A type is sent somewhere but has no entry in the dispatch table: the
    receiver would raise ``ProtocolError`` on a message the sender considers
    part of the protocol.

``unsent-handler``
    A dispatch entry exists for a type nothing ever sends: dead handler code
    the tests cannot be exercising end to end.

``dead-message-type``
    A ``MessageType`` member is neither sent nor dispatched -- it is
    unreachable vocabulary.  (Replies never need members: the network layer
    is synchronous RPC, so every response travels as the handler's return
    payload, not as an envelope.)

``missing-decoder``
    A class defining ``to_wire`` has no strict decoder registered in
    ``recovery/wire.py``'s ``WIRE_DECODERS`` -- subsumes the same-named
    ``lint.py`` rule, reusing its extraction.

Send sites whose message type is a *variable* (the generic forwarders inside
``timed_exchange`` and ``Network.broadcast``) carry no static type and are
excluded: every protocol phase names its type literally at the call site
that enters those forwarders, which is the site this pass records.

:func:`deployment_edges` projects the graph onto the three deployments
(classic, scaled, 2PC) by the modules each one drives, giving the golden
edge sets the flow-graph test asserts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.check.static.model import (
    Finding,
    SourceTree,
    call_message_types,
    call_name,
)

#: Callee names that put a ``MessageType`` on the wire.
SEND_CALLEES = (
    "send",
    "broadcast",
    "timed_broadcast",
    "timed_exchange",
    "_broadcast_phase",
    "Envelope",
)

#: Modules each deployment drives (path prefixes relative to the root).
#: The client, auditor, and recovery manager run against every deployment;
#: the coordinator module is what distinguishes them, and the view-change
#: protocol serves all three.
DEPLOYMENT_MODULES: Dict[str, Tuple[str, ...]] = {
    "classic": (
        "client/",
        "audit/",
        "recovery/",
        "core/tfcommit.py",
        "core/viewchange.py",
    ),
    "scaled": (
        "client/",
        "audit/",
        "recovery/",
        "core/tfcommit.py",
        "core/viewchange.py",
        "core/scaled.py",
        "core/ordserv.py",
        "core/sequencing.py",
    ),
    "twopc": (
        "client/",
        "audit/",
        "recovery/",
        "core/twopc.py",
        "core/viewchange.py",
    ),
}


@dataclass(frozen=True)
class SendSite:
    """One static occurrence of a message type entering the network layer."""

    path: str
    line: int
    callee: str
    message_type: str


@dataclass
class FlowGraph:
    """The whole-program message-flow graph."""

    #: Every static send site, in (path, line) order.
    send_sites: List[SendSite] = field(default_factory=list)
    #: Dispatch table: message type name -> handler method name.
    handlers: Dict[str, str] = field(default_factory=dict)
    #: Where the dispatch table lives: (path, line).
    dispatch_site: Optional[Tuple[str, int]] = None
    #: Every ``MessageType`` member: name -> definition line.
    message_types: Dict[str, int] = field(default_factory=dict)
    #: Path of the module defining ``MessageType``.
    message_module: str = ""
    #: Classes defining ``to_wire``: name -> (path, line).
    wire_classes: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: Class names registered in ``WIRE_DECODERS``.
    decoders: Set[str] = field(default_factory=set)

    def sent_types(self) -> Set[str]:
        return {site.message_type for site in self.send_sites}

    def edges(self) -> Set[Tuple[str, str]]:
        """Every (message type, handler) pair realized by some send site."""
        sent = self.sent_types()
        return {
            (name, handler)
            for name, handler in self.handlers.items()
            if name in sent
        }


def extract_flow_graph(tree: SourceTree) -> FlowGraph:
    graph = FlowGraph()
    for relative, module in tree.modules.items():
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and call_name(node) in SEND_CALLEES:
                for type_name in call_message_types(node):
                    graph.send_sites.append(
                        SendSite(relative, node.lineno, call_name(node), type_name)
                    )
            elif isinstance(node, ast.ClassDef):
                if node.name == "MessageType":
                    graph.message_module = relative
                    for item in node.body:
                        if isinstance(item, ast.Assign):
                            for target in item.targets:
                                if isinstance(target, ast.Name):
                                    graph.message_types[target.id] = item.lineno
                for item in node.body:
                    if isinstance(item, ast.FunctionDef) and item.name == "to_wire":
                        graph.wire_classes[node.name] = (relative, node.lineno)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == "handle":
                    _extract_dispatch(graph, relative, node)
    graph.send_sites.sort(key=lambda site: (site.path, site.line, site.message_type))
    return graph


def _extract_dispatch(graph: FlowGraph, relative: str, func: ast.AST) -> None:
    """Pull ``{MessageType.X: self._on_x, ...}`` out of a ``handle`` method."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Dict):
            continue
        entries: Dict[str, str] = {}
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Attribute)
                and isinstance(key.value, ast.Name)
                and key.value.id == "MessageType"
                and isinstance(value, ast.Attribute)
            ):
                entries[key.attr] = value.attr
        if entries:
            graph.handlers.update(entries)
            graph.dispatch_site = (relative, node.lineno)


def deployment_edges(graph: FlowGraph, deployment: str) -> Set[Tuple[str, str]]:
    """The (message type, handler) edges one deployment's modules realize."""
    prefixes = DEPLOYMENT_MODULES[deployment]
    types = {
        site.message_type
        for site in graph.send_sites
        if any(
            site.path == prefix or site.path.startswith(prefix)
            for prefix in prefixes
        )
    }
    return {
        (name, handler)
        for name, handler in graph.handlers.items()
        if name in types
    }


def format_edges(edges: Set[Tuple[str, str]]) -> List[str]:
    """Render an edge set for readable test diffs."""
    return [f"{name} -> {handler}" for name, handler in sorted(edges)]


def flow_findings(
    tree: SourceTree, wire_registry: Optional[Path] = None
) -> List[Finding]:
    """Run the totality checks; returns findings (not yet suppressed)."""
    graph = extract_flow_graph(tree)
    findings: List[Finding] = list(tree.syntax_errors)
    sent = graph.sent_types()
    handled = set(graph.handlers)

    first_site: Dict[str, SendSite] = {}
    for site in graph.send_sites:
        first_site.setdefault(site.message_type, site)

    for type_name in sorted(sent - handled):
        site = first_site[type_name]
        findings.append(
            Finding(
                "flow",
                "unhandled-message",
                site.path,
                site.line,
                "",
                f"MessageType.{type_name} is sent here but has no entry in the "
                "server dispatch table; receivers will raise ProtocolError",
            )
        )
    dispatch_path, dispatch_line = graph.dispatch_site or ("", 0)
    for type_name in sorted(handled - sent):
        findings.append(
            Finding(
                "flow",
                "unsent-handler",
                dispatch_path,
                dispatch_line,
                "",
                f"dispatch table handles MessageType.{type_name} but no send "
                "site ever emits it",
            )
        )
    for type_name, line in sorted(graph.message_types.items()):
        if type_name not in sent and type_name not in handled:
            findings.append(
                Finding(
                    "flow",
                    "dead-message-type",
                    graph.message_module,
                    line,
                    "",
                    f"MessageType.{type_name} is neither sent nor handled; "
                    "delete it or wire it (replies travel as handler return "
                    "payloads, not as envelopes)",
                )
            )

    registry = wire_registry or (tree.root / "recovery" / "wire.py")
    if registry.exists():
        from repro.check.lint import _registered_decoders

        graph.decoders = _registered_decoders(registry)
        for class_name, (path, line) in sorted(graph.wire_classes.items()):
            if class_name not in graph.decoders:
                findings.append(
                    Finding(
                        "flow",
                        "missing-decoder",
                        path,
                        line,
                        "",
                        f"class {class_name} defines to_wire but has no decoder "
                        "registered in recovery/wire.py WIRE_DECODERS",
                    )
                )
    else:
        findings.append(
            Finding(
                "flow", "missing-decoder", str(registry), 0, "",
                "wire registry file not found",
            )
        )
    return findings
