"""Checkable deployments: small real systems with enumerable fault branches.

A scenario builds a *fresh* tiny deployment out of the real system classes
(no mocks), runs a short workload under the active :class:`ChoiceSource`,
and returns the :class:`~repro.check.invariants.RunRecord` the invariant
library evaluates.  All nondeterminism flows through :mod:`repro.check.choices`:

- delivery/processing order (``net-order`` / ``loop-order`` features, wired
  into :func:`repro.core.tfcommit.timed_broadcast`, ``Network.broadcast``,
  and the event loop's same-time tie-break);
- crash injection (:class:`ChoiceCrashPolicy`: every vote/decision phase
  observation of every server is a binary crash branch, one crash per run);
- Byzantine coordinator actions (:class:`ChoiceByzantinePolicy`: per round
  the coordinator picks honest / drop a victim's root / fake a victim's
  root / equivocate, and the victim itself is a choice);
- ordering-service release order (``ordserv-pick`` feature inside
  ``OrderingService._pick_next``).

Configurations are deliberately tiny (3 servers, 4 items per shard, hash
"signing", fixed compute) so a full run costs tens of milliseconds and the
explorer can afford hundreds of them.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional

from repro.check.choices import choose
from repro.check.invariants import RunRecord
from repro.common.config import SystemConfig
from repro.core.fides import FidesSystem
from repro.core.scaled import ScaledFidesSystem
from repro.server.faults import FaultPolicy
from repro.sim.context import FixedCompute
from repro.txn.operations import ReadOp, WriteOp
from repro.workload.ycsb import TransactionSpec


def tiny_config(num_servers: int = 3, seed: int = 2020) -> SystemConfig:
    """The checker's standard deployment: small, fast, hash-'signed'."""
    return SystemConfig(
        num_servers=num_servers,
        items_per_shard=4,
        txns_per_block=1,
        ops_per_txn=2,
        message_signing="hash",
        seed=seed,
    )


class _CrashBudget:
    """Shared between per-server crash policies: at most one crash per run."""

    def __init__(self, crashes: int = 1) -> None:
        self.remaining = crashes


class ChoiceCrashPolicy(FaultPolicy):
    """Every vote/decision phase observation is a binary crash branch."""

    name = "choice-crash"

    def __init__(self, server_id: str, budget: _CrashBudget) -> None:
        self._server_id = server_id
        self._budget = budget
        self._fired = False

    def crash_now(self) -> bool:
        if self._fired or self._budget.remaining <= 0:
            return False
        ctx = self.context
        if ctx.phase not in ("vote", "decision"):
            return False
        pick = choose(
            f"fault/crash/{self._server_id}/{ctx.phase}@{ctx.block_height}",
            2,
            0,
            feature="faults",
        )
        if pick == 1:
            self._fired = True
            self._budget.remaining -= 1
            return True
        return False


class ChoiceByzantinePolicy(FaultPolicy):
    """Coordinator-side Byzantine actions as an enumerable per-round choice.

    At each round's ``coordinate`` observation the policy picks one of:
    honest, drop a victim's root from the block, record a fake root for a
    victim (Scenario 2), or equivocate commit/abort (Figure 8).  A victim,
    where applicable, is itself a choice among the other cohorts.  One
    non-honest action per run keeps the branch factor bounded.
    """

    name = "choice-byzantine"

    ACTION_HONEST, ACTION_DROP_ROOT, ACTION_FAKE_ROOT, ACTION_EQUIVOCATE = range(4)

    def __init__(self, victims: List[str]) -> None:
        self._victims = list(victims)
        self._latched = False
        self._action = self.ACTION_HONEST
        self._victim: Optional[str] = None
        #: True once any non-honest action ran (the scenario then counts
        #: this server as Byzantine for the invariant quantifications).
        self.acted = False

    def observe_phase(self, phase, block_height=None, txn_ids=()) -> None:
        super().observe_phase(phase, block_height, txn_ids)
        if phase != "coordinate":
            return
        if self._latched:
            self._action = self.ACTION_HONEST
            return
        self._action = choose("fault/byzantine-action", 4, 0, feature="faults")
        if self._action in (self.ACTION_DROP_ROOT, self.ACTION_FAKE_ROOT) and self._victims:
            pick = choose("fault/byzantine-victim", len(self._victims), 0, feature="faults")
            self._victim = self._victims[pick]
        if self._action != self.ACTION_HONEST:
            self._latched = True
            self.acted = True

    def fake_root_for(self, server_id, root):
        if server_id != self._victim or root is None:
            return root
        if self._action == self.ACTION_DROP_ROOT:
            return None
        if self._action == self.ACTION_FAKE_ROOT:
            return b"\x00" * 32
        return root

    def equivocate(self) -> bool:
        return self._action == self.ACTION_EQUIVOCATE


class Scenario:
    """One checkable deployment; subclasses implement :meth:`run`."""

    #: Registry key; overridden per subclass.
    name = ""
    #: Choice-site families this scenario explores.
    features: FrozenSet[str] = frozenset()
    #: Invariants to evaluate (``None`` means the whole catalogue).
    invariants: Optional[List[str]] = None

    def run(self) -> RunRecord:
        raise NotImplementedError


def _spec(index: int, write_item: str, read_item: str) -> TransactionSpec:
    return TransactionSpec(index, (WriteOp(write_item, index + 100), ReadOp(read_item)))


class ClassicCrashScenario(Scenario):
    """3-server classic TFCommit, 2 workload runs, 1 enumerable crash.

    A crash can fire at any cohort's vote or decision phase; crashed servers
    recover between and after the workload runs, so the run also exercises
    verified peer catch-up.  When the crashed server is the *coordinator*,
    surviving cohorts deliberately keep their armed round state (no
    ROUND_FAILED arrives -- the sender is dead), so the scenario must run the
    view change after recovery: failover is the only legitimate way that
    state is ever released.  The two separate ``run_workload`` calls make the
    workload-accounting invariant meaningful (it is what catches the PR 3
    double-count mutation on the all-defaults path).
    """

    name = "classic-crash"
    features = frozenset({"faults", "net-order"})

    def run(self) -> RunRecord:
        system = FidesSystem(config=tiny_config(), compute_model=FixedCompute(0.001))
        budget = _CrashBudget(crashes=1)
        for server_id, server in system.servers.items():
            server.set_faults(ChoiceCrashPolicy(server_id, budget))
        items: Dict[str, List[str]] = {
            server_id: sorted(system.shard_map.items_of(server_id))
            for server_id in system.config.server_ids
        }
        s0, s1, s2 = system.config.server_ids
        slices: List[object] = []
        crashes: List[str] = []

        def recover_and_maybe_fail_over() -> None:
            coordinator_down = system.coordinator_id in system.crashed_servers()
            crashes.extend(system.crashed_servers())
            for server_id in system.crashed_servers():
                system.recover_server(server_id)
            if coordinator_down:
                system.fail_over()

        slices.append(system.run_workload([_spec(0, items[s0][0], items[s1][0])]))
        recover_and_maybe_fail_over()
        slices.append(system.run_workload([_spec(1, items[s1][1], items[s2][0])]))
        recover_and_maybe_fail_over()
        system.sim.drain()
        return RunRecord(system=system, slices=slices, notes={"crashes": crashes})


class ViewChangeScenario(Scenario):
    """Coordinator failover under every enumerable coordinator fault.

    The initial coordinator either crashes (at any of its vote/decision
    observations -- including *after* deciding a block locally, the branch
    :func:`~repro.core.viewchange.already_committed` guards) or turns
    Byzantine (drop/fake root, equivocation); either way the scenario then
    runs the view change explicitly and drives a second workload slice under
    the elected successor.  The ``view-change`` feature additionally branches
    on the successor's re-proposal order.  The headline invariant is
    ``decided-once``: no schedule may let an original proposal and its
    re-proposal both decide.
    """

    name = "view-change"
    features = frozenset({"faults", "net-order", "view-change"})

    MODE_CRASH, MODE_BYZANTINE = range(2)

    def run(self) -> RunRecord:
        system = FidesSystem(config=tiny_config(), compute_model=FixedCompute(0.001))
        s0, s1, s2 = system.config.server_ids
        mode = choose("view-change/coordinator-fault", 2, 0, feature="faults")
        byzantine_policy: Optional[ChoiceByzantinePolicy] = None
        if mode == self.MODE_CRASH:
            system.servers[s0].set_faults(ChoiceCrashPolicy(s0, _CrashBudget(crashes=1)))
        else:
            byzantine_policy = ChoiceByzantinePolicy(victims=[s1, s2])
            system.servers[s0].set_faults(byzantine_policy)
        items = {
            server_id: sorted(system.shard_map.items_of(server_id))
            for server_id in system.config.server_ids
        }
        slices: List[object] = [
            system.run_workload(
                [
                    _spec(0, items[s0][0], items[s1][0]),
                    _spec(1, items[s1][1], items[s2][0]),
                ]
            )
        ]
        # Re-proposal needs the full cluster co-signing again, so a crashed
        # coordinator is recovered *before* it is deposed.
        for server_id in system.crashed_servers():
            system.recover_server(server_id)
        outcome = system.fail_over()
        slices.append(system.run_workload([_spec(2, items[s2][1], items[s0][1])]))
        # A crash choice that waited past the failover fires with s0 as a
        # plain cohort; recover it so the invariants quantify over all logs.
        for server_id in system.crashed_servers():
            system.recover_server(server_id)
        system.sim.drain()
        byzantine = (
            frozenset({s0})
            if byzantine_policy is not None and byzantine_policy.acted
            else frozenset()
        )
        return RunRecord(
            system=system,
            slices=slices,
            byzantine=byzantine,
            notes={
                "mode": "crash" if mode == self.MODE_CRASH else "byzantine",
                "successor": outcome.successor,
                "new_view": outcome.new_view,
                "reproposed": len(outcome.stalled_rounds),
            },
        )


class ClassicByzantineScenario(Scenario):
    """3-server classic TFCommit with an enumerable Byzantine coordinator.

    Every coordinator action (root drop, fake root, equivocation) must make
    the round fail without any honest-server invariant breaking -- the
    paper's claim that malicious coordinators cost liveness, never safety.
    """

    name = "classic-byzantine"
    features = frozenset({"faults", "net-order"})

    def run(self) -> RunRecord:
        system = FidesSystem(config=tiny_config(), compute_model=FixedCompute(0.001))
        s0, s1, s2 = system.config.server_ids
        policy = ChoiceByzantinePolicy(victims=[s1, s2])
        system.servers[s0].set_faults(policy)
        items = {
            server_id: sorted(system.shard_map.items_of(server_id))
            for server_id in system.config.server_ids
        }
        slices = [
            system.run_workload(
                [
                    _spec(0, items[s1][0], items[s2][0]),
                    _spec(1, items[s2][1], items[s0][0]),
                ]
            )
        ]
        system.sim.drain()
        byzantine = frozenset({s0}) if policy.acted else frozenset()
        return RunRecord(system=system, slices=slices, byzantine=byzantine)


class ScaledReorderScenario(Scenario):
    """3-group scaled deployment driving the ordering service's freedom.

    Three disjoint-group transactions overflow a reorder window of 2, so
    the service's release pick is a live branch; a fourth cross-group
    transaction exercises ``flush_conflicting`` and the dependency rules
    under every explored release order.
    """

    name = "scaled-reorder"
    features = frozenset({"ordserv-pick", "net-order"})

    def run(self) -> RunRecord:
        system = ScaledFidesSystem(
            config=tiny_config(),
            reorder_window=2,
            compute_model=FixedCompute(0.001),
        )
        s0, s1, s2 = system.config.server_ids
        items = {
            server_id: sorted(system.shard_map.items_of(server_id))
            for server_id in system.config.server_ids
        }
        slices = [
            system.run_workload(
                [
                    _spec(0, items[s0][0], items[s0][1]),
                    _spec(1, items[s1][0], items[s1][1]),
                    _spec(2, items[s2][0], items[s2][1]),
                    # Cross-group: reads s0's shard, writes s1's.
                    TransactionSpec(3, (WriteOp(items[s1][2], 7), ReadOp(items[s0][2]))),
                ]
            )
        ]
        system.sim.drain()
        return RunRecord(system=system, slices=slices)


class ShardedOrderingScenario(Scenario):
    """4-server scaled deployment over a 2-shard sequencer (DESIGN.md §13).

    Servers split into two ordering shards ({s0, s1} and {s2, s3}); two
    lane-local transactions per shard keep both lanes non-empty whenever a
    cross-shard transaction arrives, so every epoch merge is a live
    ``shard-merge`` lane-pick branch.  Two cross-shard transactions produce
    two sealed epoch anchors per run, and the trailing ``run_workload``
    flush drains whatever still floats.  The invariant catalogue (agreement,
    hash-chain, frontier monotonicity, no-commit-lost, ...) must hold under
    every explored lane interleaving -- the dependency-safety argument in
    :mod:`repro.core.sequencing`'s docstring, checked rather than trusted.
    """

    name = "sharded-ordering"
    features = frozenset({"shard-merge", "net-order"})

    def run(self) -> RunRecord:
        from repro.core.sequencing import sharded_sequencer

        system = ScaledFidesSystem(
            config=tiny_config(num_servers=4),
            compute_model=FixedCompute(0.001),
            sequencer=sharded_sequencer(2, epoch_max_blocks=8),
        )
        s0, s1, s2, s3 = system.config.server_ids
        items = {
            server_id: sorted(system.shard_map.items_of(server_id))
            for server_id in system.config.server_ids
        }
        slices = [
            system.run_workload(
                [
                    # Lane 0 and lane 1 each buffer a local block...
                    _spec(0, items[s0][0], items[s0][1]),
                    _spec(1, items[s2][0], items[s2][1]),
                    # ...so this cross-shard block merges two live lanes.
                    _spec(2, items[s1][0], items[s3][0]),
                    # Refill both lanes and merge again: a second epoch.
                    _spec(3, items[s1][1], items[s1][2]),
                    _spec(4, items[s3][1], items[s3][2]),
                    _spec(5, items[s0][2], items[s2][2]),
                ]
            )
        ]
        system.sim.drain()
        return RunRecord(
            system=system,
            slices=slices,
            notes={
                "epochs": len(system.ordering.epoch_anchors),
                "shard_chains_ok": system.ordering.verify_shard_chains(),
            },
        )


class InterleavingScenario(Scenario):
    """Classic deployment exploring same-time event-loop interleavings.

    No faults: this scenario turns on the ``loop-order`` tie-break (and the
    broadcast order), checking that *scheduling* freedom alone can never
    break an invariant -- and supplying the bulk of the distinct-state count
    for the smoke budget.
    """

    name = "classic-interleaving"
    features = frozenset({"loop-order", "net-order"})

    def run(self) -> RunRecord:
        system = FidesSystem(config=tiny_config(), compute_model=FixedCompute(0.001))
        s0, s1, s2 = system.config.server_ids
        items = {
            server_id: sorted(system.shard_map.items_of(server_id))
            for server_id in system.config.server_ids
        }
        slices = [
            system.run_workload(
                [
                    _spec(0, items[s0][0], items[s1][0]),
                    _spec(1, items[s2][0], items[s0][1]),
                ]
            )
        ]
        system.sim.drain()
        return RunRecord(system=system, slices=slices)


SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    scenario_cls.name: scenario_cls
    for scenario_cls in (
        ClassicCrashScenario,
        ClassicByzantineScenario,
        ViewChangeScenario,
        ScaledReorderScenario,
        ShardedOrderingScenario,
        InterleavingScenario,
    )
}


def make_scenario(name: str) -> Scenario:
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}") from None
    return factory()
