"""The transaction execution layer of a database server.

Responsibilities (Section 4.2.1):

* answer read requests with the item's value and its ``rts``/``wts``;
* buffer write requests and acknowledge them (including the old value and
  timestamps for blind writes);
* keep an archive of the signed client requests so a server can defend
  itself against a malicious client's falsified blame (Section 3.2).

The layer consults the server's :class:`~repro.server.faults.FaultPolicy`
so malicious behaviours (returning wrong read values, dropping buffered
writes) can be injected without touching the honest code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.common.errors import StorageError
from repro.common.types import ClientId, ItemId, TxnId, Value
from repro.net.message import Envelope
from repro.server.faults import FaultPolicy, HonestBehavior
from repro.storage.datastore import DataStore, ReadResult


@dataclass
class ActiveTransaction:
    """Per-transaction execution state kept while a client is still working."""

    txn_id: TxnId
    client_id: ClientId
    items_read: List[ItemId] = field(default_factory=list)
    buffered_writes: Dict[ItemId, Value] = field(default_factory=dict)


class ExecutionLayer:
    """Executes transactional reads and buffers writes for one shard."""

    def __init__(self, store: DataStore, faults: Optional[FaultPolicy] = None) -> None:
        self._store = store
        self._faults = faults or HonestBehavior()
        self._active: Dict[TxnId, ActiveTransaction] = {}
        #: Archive of signed client envelopes, the server's defence against
        #: falsified client accusations (Section 3.2).
        self._client_message_log: List[Envelope] = []

    @property
    def store(self) -> DataStore:
        return self._store

    @property
    def faults(self) -> FaultPolicy:
        return self._faults

    def set_faults(self, faults: FaultPolicy) -> None:
        self._faults = faults

    def archive_client_message(self, envelope: Envelope) -> None:
        self._client_message_log.append(envelope)

    @property
    def client_message_log(self) -> List[Envelope]:
        return list(self._client_message_log)

    # -- transaction life-cycle -------------------------------------------------

    def begin(self, txn_id: TxnId, client_id: ClientId) -> None:
        """Start tracking a client transaction (Begin Transaction, Figure 5)."""
        if txn_id not in self._active:
            self._active[txn_id] = ActiveTransaction(txn_id=txn_id, client_id=client_id)

    def read(self, txn_id: TxnId, item_id: ItemId) -> ReadResult:
        """Serve a read: latest value + timestamps from the local shard."""
        if item_id not in self._store:
            raise StorageError(f"item {item_id!r} is not stored on this server")
        active = self._active.setdefault(txn_id, ActiveTransaction(txn_id, client_id=""))
        active.items_read.append(item_id)
        result = self._store.read(item_id)
        reported_value = self._faults.corrupt_read_value(item_id, result.value)
        return ReadResult(
            item_id=item_id, value=reported_value, rts=result.rts, wts=result.wts
        )

    def write(self, txn_id: TxnId, item_id: ItemId, value: Value) -> ReadResult:
        """Buffer a write and return the *old* value + timestamps (blind-write support)."""
        if item_id not in self._store:
            raise StorageError(f"item {item_id!r} is not stored on this server")
        active = self._active.setdefault(txn_id, ActiveTransaction(txn_id, client_id=""))
        if not self._faults.drop_buffered_write(item_id):
            active.buffered_writes[item_id] = value
        return self._store.read(item_id)

    def buffered_writes(self, txn_id: TxnId) -> Dict[ItemId, Value]:
        """The writes buffered so far for ``txn_id`` (empty if none)."""
        active = self._active.get(txn_id)
        return dict(active.buffered_writes) if active else {}

    def finish(self, txn_id: TxnId) -> None:
        """Forget the per-transaction state once the transaction terminated."""
        self._active.pop(txn_id, None)

    def finish_many(self, txn_ids: Iterable[TxnId]) -> int:
        """Forget the state of every transaction in a terminated block.

        Called by the server once a block's decision has been applied; without
        it the per-transaction buffers of batched workloads accumulate
        forever, which matters once many concurrent clients drive the system.
        Returns how many active entries were released.
        """
        released = 0
        for txn_id in txn_ids:
            if self._active.pop(txn_id, None) is not None:
                released += 1
        return released

    def active_transactions(self) -> List[TxnId]:
        return list(self._active)
