"""The Fides database server.

A :class:`DatabaseServer` bundles the four components of Figure 3 -- the
execution layer, the commitment layer, the datastore, and the tamper-proof
log -- behind one network handler that dispatches on message type.  The
server is deliberately simple ("we choose a simplified design for a database
server to minimize the potential for failure", Section 3.1): it has no
front-end transaction manager; clients talk to it directly for data access,
and the designated coordinator talks to it during transaction termination.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.common.errors import ProtocolError, ValidationError
from repro.common.timestamps import Timestamp
from repro.common.types import ServerId, Value
from repro.crypto.keys import KeyPair
from repro.ledger.log import TransactionLog
from repro.net.message import Envelope, MessageType
from repro.net.network import Network
from repro.server.commitment import CommitmentLayer
from repro.server.execution import ExecutionLayer
from repro.server.faults import FaultPolicy, HonestBehavior
from repro.storage.datastore import DataStore


class DatabaseServer:
    """One untrusted database server storing a single shard."""

    def __init__(
        self,
        server_id: ServerId,
        keypair: KeyPair,
        items: Mapping[str, Value],
        multi_versioned: bool = True,
        faults: Optional[FaultPolicy] = None,
    ) -> None:
        self.server_id = server_id
        self.keypair = keypair
        faults = faults or HonestBehavior()
        self.store = DataStore(items, multi_versioned=multi_versioned)
        self.log = TransactionLog()
        self.execution = ExecutionLayer(self.store, faults)
        self.commitment = CommitmentLayer(server_id, keypair, self.store, self.log, faults)
        self._network: Optional[Network] = None
        #: Coordinator role (TFCommit or 2PC) if this server is the designated
        #: coordinator; set via :meth:`set_coordinator_role`.
        self.coordinator_role = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, network: Network) -> None:
        """Register this server's handler and keys on the network."""
        self._network = network
        network.register(self.server_id, self.keypair, self.handle)

    @property
    def network(self) -> Network:
        if self._network is None:
            raise ProtocolError(f"server {self.server_id} is not attached to a network")
        return self._network

    @property
    def faults(self) -> FaultPolicy:
        return self.commitment.faults

    def set_faults(self, faults: FaultPolicy) -> None:
        """Swap in a (possibly malicious) behaviour policy for both layers."""
        self.execution.set_faults(faults)
        self.commitment.set_faults(faults)

    def set_coordinator_role(self, role) -> None:
        """Give this server the coordinator's extra termination duties (Section 4.1)."""
        self.coordinator_role = role

    # -- message dispatch -------------------------------------------------------

    def handle(self, envelope: Envelope):
        """Handle one verified envelope; returns the response payload."""
        handler = {
            MessageType.BEGIN_TRANSACTION: self._on_begin,
            MessageType.READ: self._on_read,
            MessageType.WRITE: self._on_write,
            MessageType.END_TRANSACTION: self._on_end_transaction,
            MessageType.GET_VOTE: self._on_get_vote,
            MessageType.CHALLENGE: self._on_challenge,
            MessageType.DECISION: self._on_decision,
            MessageType.ROUND_FAILED: self._on_round_failed,
            MessageType.ORDERED_BLOCK: self._on_ordered_block,
            MessageType.PREPARE: self._on_prepare,
            MessageType.COMMIT_DECISION: self._on_2pc_decision,
            MessageType.AUDIT_LOG_REQUEST: self._on_audit_log_request,
            MessageType.AUDIT_VO_REQUEST: self._on_audit_vo_request,
        }.get(envelope.message_type)
        if handler is None:
            raise ProtocolError(
                f"server {self.server_id} cannot handle message type {envelope.message_type}"
            )
        return handler(envelope)

    # -- execution-layer messages (Figure 6) --------------------------------------

    def _on_begin(self, envelope: Envelope):
        payload = envelope.payload
        self.execution.archive_client_message(envelope)
        self.execution.begin(payload["txn_id"], payload.get("client_id", envelope.sender))
        return {"ok": True, "server_id": self.server_id}

    def _on_read(self, envelope: Envelope):
        payload = envelope.payload
        self.execution.archive_client_message(envelope)
        # Execution-layer hooks see the height the *next* block would carry,
        # so height-based fault triggers line up with the commitment phases.
        self.faults.observe_phase("execute", self.log.height, (payload["txn_id"],))
        result = self.execution.read(payload["txn_id"], payload["item_id"])
        return result.to_wire()

    def _on_write(self, envelope: Envelope):
        payload = envelope.payload
        self.execution.archive_client_message(envelope)
        self.faults.observe_phase("execute", self.log.height, (payload["txn_id"],))
        old = self.execution.write(payload["txn_id"], payload["item_id"], payload["value"])
        return {"ok": True, "old": old.to_wire(), "server_id": self.server_id}

    def _on_end_transaction(self, envelope: Envelope):
        """Route a client's termination request to the coordinator role."""
        self.execution.archive_client_message(envelope)
        if self.coordinator_role is None:
            raise ProtocolError(
                f"server {self.server_id} received end_transaction but is not the coordinator"
            )
        return self.coordinator_role.on_end_transaction(envelope)

    # -- TFCommit cohort messages (Figure 7) ----------------------------------------

    def _on_get_vote(self, envelope: Envelope):
        payload = envelope.payload
        block = payload["block"]
        client_requests = payload.get("client_requests", [])
        force_abort_reason = ""
        for request in client_requests:
            if not self.network.verify_envelope(request):
                force_abort_reason = "encapsulated client request failed signature verification"
                break
        vote = self.commitment.handle_get_vote(block, force_abort_reason=force_abort_reason)
        return vote.to_wire()

    def _on_challenge(self, envelope: Envelope):
        payload = envelope.payload
        return self.commitment.handle_challenge(
            challenge=payload["challenge"],
            aggregate_commitment=payload["aggregate_commitment"],
            block=payload["block"],
        )

    def _on_decision(self, envelope: Envelope):
        payload = envelope.payload
        block = payload["block"]
        response = self.commitment.handle_decision(block, self.network.public_key_directory())
        if response.get("ok"):
            # The block terminated its transactions; release their buffered
            # execution state so long multi-client runs do not accumulate it.
            self.execution.finish_many(txn.txn_id for txn in block.transactions)
        return response

    def _on_round_failed(self, envelope: Envelope):
        """Release buffered round state for a round the coordinator abandoned."""
        return self.commitment.handle_round_failed(envelope.payload["round_key"])

    # -- scaled deployment: ordered-stream delivery (Section 4.6) -------------------------

    def _on_ordered_block(self, envelope: Envelope):
        """Apply one globally ordered block delivered by the ordering service."""
        block = envelope.payload["block"]
        response = self.commitment.handle_ordered_block(
            block, self.network.public_key_directory()
        )
        if response.get("ok"):
            self.execution.finish_many(txn.txn_id for txn in block.transactions)
        return response

    # -- 2PC baseline messages ----------------------------------------------------------

    def _on_prepare(self, envelope: Envelope):
        return self.commitment.handle_prepare(envelope.payload["block"])

    def _on_2pc_decision(self, envelope: Envelope):
        block = envelope.payload["block"]
        response = self.commitment.handle_2pc_decision(block)
        if response.get("ok"):
            self.execution.finish_many(txn.txn_id for txn in block.transactions)
        return response

    # -- audit messages (Section 3.3) -----------------------------------------------------

    def _on_audit_log_request(self, envelope: Envelope):
        """Hand over (a copy of) the local log for an offline audit."""
        return {"server_id": self.server_id, "log": self.log.copy()}

    def _on_audit_vo_request(self, envelope: Envelope):
        """Produce a Verification Object for one item, optionally at a version."""
        payload = envelope.payload
        item_id = payload["item_id"]
        at = payload.get("at")
        if item_id not in self.store:
            return {"server_id": self.server_id, "ok": False, "reason": "item not stored here"}
        if at is None or not self.store.multi_versioned:
            vo = self.store.verification_object(item_id)
            root = self.store.merkle_root()
            value = self.store.read(item_id).value
        else:
            timestamp = Timestamp(at[0], at[1]) if isinstance(at, (tuple, list)) else at
            vo, root = self.store.verification_object_at(item_id, timestamp)
            value = self.store.read_version(item_id, timestamp).value
        return {"server_id": self.server_id, "ok": True, "vo": vo, "root": root, "value": value}

    # -- convenience -----------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Value]:
        """Latest committed value of every locally stored item."""
        return self.store.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatabaseServer({self.server_id!r}, items={len(self.store)}, "
            f"log_height={self.log.height}, faults={self.faults.name!r})"
        )
