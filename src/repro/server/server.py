"""The Fides database server.

A :class:`DatabaseServer` bundles the four components of Figure 3 -- the
execution layer, the commitment layer, the datastore, and the tamper-proof
log -- behind one network handler that dispatches on message type.  The
server is deliberately simple ("we choose a simplified design for a database
server to minimize the potential for failure", Section 3.1): it has no
front-end transaction manager; clients talk to it directly for data access,
and the designated coordinator talks to it during transaction termination.

Servers can **crash and recover** (the liveness half of the fault model):
:meth:`DatabaseServer.crash` drops every piece of volatile state -- the
execution buffers, the commitment layer's round state, the live datastore
and log objects, the network handler -- keeping only the identity keys and
the durable :class:`~repro.recovery.statestore.StateStore`.
:meth:`DatabaseServer.recover` rebuilds the server from that store, fetches
the block range it missed from (untrusted) peers via ``STATE_REQUEST``, and
re-registers on the network; see :mod:`repro.recovery` for the verification
the catch-up performs.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.common.errors import (
    ProtocolError,
    RecoveryError,
    ServerCrashed,
    UnreachableError,
)
from repro.common.timestamps import Timestamp
from repro.common.types import ServerId, Value
from repro.crypto.keys import KeyPair
from repro.ledger.checkpoint import Checkpoint, apply_checkpoint
from repro.ledger.log import TransactionLog
from repro.net.message import Envelope, MessageType
from repro.net.network import Network
from repro.recovery.manager import RecoveryResult, recover_server_state
from repro.recovery.statestore import MemoryStateStore, StateStore
from repro.server.commitment import CommitmentLayer
from repro.server.execution import ExecutionLayer
from repro.server.faults import FaultPolicy, HonestBehavior
from repro.storage.datastore import DataStore


class DatabaseServer:
    """One untrusted database server storing a single shard."""

    def __init__(
        self,
        server_id: ServerId,
        keypair: KeyPair,
        items: Mapping[str, Value],
        multi_versioned: bool = True,
        faults: Optional[FaultPolicy] = None,
        state_store: Optional[StateStore] = None,
    ) -> None:
        self.server_id = server_id
        self.keypair = keypair
        faults = faults or HonestBehavior()
        #: Durable state (WAL or its in-memory simulation).  Every server has
        #: one -- crash/recovery is part of the deployment model, not an
        #: optional extra -- and it survives :meth:`crash` untouched.
        self.state_store = state_store or MemoryStateStore()
        self.store = DataStore(items, multi_versioned=multi_versioned)
        self.log = TransactionLog()
        self.execution = ExecutionLayer(self.store, faults)
        self.commitment = CommitmentLayer(
            server_id,
            keypair,
            self.store,
            self.log,
            faults,
            on_block_applied=self._persist_block,
        )
        self.state_store.initialize(server_id, self.store.export_state())
        #: Latest collectively signed checkpoint this server's log was
        #: truncated under (None until one is installed).
        self.latest_checkpoint: Optional[Checkpoint] = None
        #: Epoch anchors received from a sharded ordering service, in epoch
        #: order (possibly with gaps if this server was down when one was
        #: broadcast); volatile, like the rest of the unlogged message state.
        self.epoch_anchors: List = []
        self.crashed = False
        self._network: Optional[Network] = None
        #: Virtual clock of the deployment's simulation context (if any);
        #: survives crashes (it is configuration, like the keys) and is
        #: re-attached to whatever fault policy is active so time-based
        #: triggers fire on the event timeline.
        self._sim_clock = None
        #: Observability bundle (if any); like the clock, it survives
        #: crashes and is re-attached to the rebuilt layers on recovery.
        self._obs = None
        #: Coordinator role (TFCommit or 2PC) if this server is the designated
        #: coordinator; set via :meth:`set_coordinator_role`.
        self.coordinator_role = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, network: Network, rejoin: bool = False) -> None:
        """Register this server's handler and keys on the network."""
        self._network = network
        network.register(self.server_id, self.keypair, self.handle, replace=rejoin)

    @property
    def network(self) -> Network:
        if self._network is None:
            raise ProtocolError(f"server {self.server_id} is not attached to a network")
        return self._network

    @property
    def faults(self) -> FaultPolicy:
        return self.commitment.faults

    def attach_sim_clock(self, clock) -> None:
        """Thread the deployment's virtual clock into the fault hooks and
        the commitment layer's round timers."""
        self._sim_clock = clock
        self.faults.attach_clock(clock)
        self.commitment.attach_clock(clock)

    def attach_obs(self, obs) -> None:
        """Thread the deployment's observability bundle into both layers
        (re-attached across crash/recovery, like the virtual clock)."""
        self._obs = obs
        self.faults.attach_obs(obs)
        self.commitment.attach_obs(obs)

    def set_faults(self, faults: FaultPolicy) -> None:
        """Swap in a (possibly malicious) behaviour policy for both layers."""
        faults.attach_clock(self._sim_clock)
        faults.attach_obs(self._obs)
        self.execution.set_faults(faults)
        self.commitment.set_faults(faults)

    def set_coordinator_role(self, role) -> None:
        """Give this server the coordinator's extra termination duties (Section 4.1)."""
        self.coordinator_role = role

    def _persist_block(self, block) -> None:
        """Durability hook: record each applied block + resulting shard root."""
        self.state_store.record_block(block, self.store.merkle_root())
        if self._obs is not None:
            self._obs.metrics.counter("recovery.wal_appends")

    # -- crash / recovery life-cycle -------------------------------------------

    def crash(self) -> None:
        """Crash: drop all volatile state, keeping only identity + durable state.

        The network handler is unregistered (messages to this server now
        raise :class:`UnreachableError`), and the live store, log, execution
        buffers, and per-round commitment state are discarded.  The
        :attr:`state_store` and the key pair survive -- they are what
        :meth:`recover` rebuilds from.
        """
        if self.crashed:
            return
        if self._network is not None:
            self._network.unregister(self.server_id)
        # The behaviour policy is configuration, not volatile state: a faulty
        # machine that reboots is still the same (possibly faulty) machine.
        self._faults_across_crash = self.commitment.faults
        self.crashed = True
        self.store = None
        self.log = None
        self.execution = None
        self.commitment = None
        self.epoch_anchors = []

    def recover(self, peers: Sequence[ServerId] = ()) -> RecoveryResult:
        """Restore from the state store, catch up from ``peers``, and rejoin.

        The crash -> restore -> catch-up -> verify -> rejoin state machine of
        DESIGN.md section 6.  Raises
        :class:`~repro.common.errors.RecoveryError` if the persisted state is
        unusable or no peer's catch-up response survives verification.
        """
        if not self.crashed:
            raise ProtocolError(f"server {self.server_id} is not crashed")
        if self._network is None:
            raise ProtocolError(f"server {self.server_id} was never attached to a network")
        store, log, checkpoint, result = recover_server_state(
            self.server_id, self.state_store, self._network, list(peers)
        )
        self.store = store
        self.log = log
        self.latest_checkpoint = checkpoint
        faults = getattr(self, "_faults_across_crash", None) or HonestBehavior()
        faults.attach_clock(self._sim_clock)
        self.execution = ExecutionLayer(self.store, faults)
        self.commitment = CommitmentLayer(
            self.server_id,
            self.keypair,
            self.store,
            self.log,
            faults,
            on_block_applied=self._persist_block,
        )
        self.commitment.attach_clock(self._sim_clock)
        if self._obs is not None:
            self.attach_obs(self._obs)
            self._obs.metrics.counter("recovery.recoveries")
            self._obs.metrics.observe(
                "recovery.replayed_blocks",
                float(result.replayed_blocks + result.fetched_blocks),
            )
        self.crashed = False
        self.attach(self._network, rejoin=True)
        return result

    def install_checkpoint(self, checkpoint: Checkpoint) -> int:
        """Truncate the local log under a co-signed checkpoint (Section 3.3).

        Persists the checkpoint (with a fresh datastore snapshot) to the
        state store, compacting its WAL; returns the number of log blocks
        dropped.  A *stale* checkpoint -- at or below the boundary already
        installed -- is a no-op: regressing ``latest_checkpoint`` or
        rewriting the snapshot to an older boundary would leave the WAL
        inconsistent with the live log and unrecoverable.
        """
        if checkpoint.height < self.log.base_height:
            return 0
        removed = apply_checkpoint(self.log, checkpoint)
        self.latest_checkpoint = checkpoint
        self.state_store.install_checkpoint(
            checkpoint, self.store.export_state(), self.log.height, self.server_id
        )
        return removed

    # -- message dispatch -------------------------------------------------------

    def handle(self, envelope: Envelope):
        """Handle one verified envelope; returns the response payload."""
        handler = {
            MessageType.BEGIN_TRANSACTION: self._on_begin,
            MessageType.READ: self._on_read,
            MessageType.WRITE: self._on_write,
            MessageType.END_TRANSACTION: self._on_end_transaction,
            MessageType.GET_VOTE: self._on_get_vote,
            MessageType.CHALLENGE: self._on_challenge,
            MessageType.DECISION: self._on_decision,
            MessageType.ROUND_FAILED: self._on_round_failed,
            MessageType.ORDERED_BLOCK: self._on_ordered_block,
            MessageType.EPOCH_ANCHOR: self._on_epoch_anchor,
            MessageType.PREPARE: self._on_prepare,
            MessageType.COMMIT_DECISION: self._on_2pc_decision,
            MessageType.VIEW_CHANGE: self._on_view_change,
            MessageType.NEW_VIEW: self._on_new_view,
            MessageType.STATE_REQUEST: self._on_state_request,
            MessageType.AUDIT_LOG_REQUEST: self._on_audit_log_request,
            MessageType.AUDIT_VO_REQUEST: self._on_audit_vo_request,
        }.get(envelope.message_type)
        if handler is None:
            raise ProtocolError(
                f"server {self.server_id} cannot handle message type {envelope.message_type}"
            )
        try:
            return handler(envelope)
        except ServerCrashed as exc:
            # A crash fault fired mid-message: drop volatile state and surface
            # the loss of the reply as unreachability, exactly what the sender
            # of a message to a just-crashed machine observes.
            self.crash()
            raise UnreachableError(str(exc)) from None

    # -- execution-layer messages (Figure 6) --------------------------------------

    def _on_begin(self, envelope: Envelope):
        payload = envelope.payload
        self.execution.archive_client_message(envelope)
        self.execution.begin(payload["txn_id"], payload.get("client_id", envelope.sender))
        return {"ok": True, "server_id": self.server_id}

    def _on_read(self, envelope: Envelope):
        payload = envelope.payload
        self.execution.archive_client_message(envelope)
        # Execution-layer hooks see the height the *next* block would carry,
        # so height-based fault triggers line up with the commitment phases.
        self.faults.observe_phase("execute", self.log.height, (payload["txn_id"],))
        result = self.execution.read(payload["txn_id"], payload["item_id"])
        return result.to_wire()

    def _on_write(self, envelope: Envelope):
        payload = envelope.payload
        self.execution.archive_client_message(envelope)
        self.faults.observe_phase("execute", self.log.height, (payload["txn_id"],))
        old = self.execution.write(payload["txn_id"], payload["item_id"], payload["value"])
        return {"ok": True, "old": old.to_wire(), "server_id": self.server_id}

    def _on_end_transaction(self, envelope: Envelope):
        """Route a client's termination request to the coordinator role."""
        self.execution.archive_client_message(envelope)
        if self.coordinator_role is None:
            raise ProtocolError(
                f"server {self.server_id} received end_transaction but is not the coordinator"
            )
        return self.coordinator_role.on_end_transaction(envelope)

    # -- TFCommit cohort messages (Figure 7) ----------------------------------------

    def _on_get_vote(self, envelope: Envelope):
        payload = envelope.payload
        block = payload["block"]
        client_requests = payload.get("client_requests", [])
        force_abort_reason = ""
        for request in client_requests:
            if not self.network.verify_envelope(request):
                force_abort_reason = "encapsulated client request failed signature verification"
                break
        vote = self.commitment.handle_get_vote(
            block,
            force_abort_reason=force_abort_reason,
            coordinator=envelope.sender,
            client_requests=tuple(client_requests),
        )
        if isinstance(vote, dict):
            # Stale-view refusal: already in response form.
            return vote
        return vote.to_wire()

    def _on_challenge(self, envelope: Envelope):
        payload = envelope.payload
        return self.commitment.handle_challenge(
            challenge=payload["challenge"],
            aggregate_commitment=payload["aggregate_commitment"],
            block=payload["block"],
        )

    def _on_decision(self, envelope: Envelope):
        payload = envelope.payload
        block = payload["block"]
        response = self.commitment.handle_decision(block, self.network.public_key_directory())
        if response.get("ok"):
            # The block terminated its transactions; release their buffered
            # execution state so long multi-client runs do not accumulate it.
            self.execution.finish_many(txn.txn_id for txn in block.transactions)
        return response

    def _on_round_failed(self, envelope: Envelope):
        """Release buffered round state for a round the coordinator abandoned."""
        return self.commitment.handle_round_failed(envelope.payload["round_key"])

    # -- scaled deployment: ordered-stream delivery (Section 4.6) -------------------------

    def _on_ordered_block(self, envelope: Envelope):
        """Apply one globally ordered block delivered by the ordering service."""
        block = envelope.payload["block"]
        response = self.commitment.handle_ordered_block(
            block, self.network.public_key_directory()
        )
        if response.get("ok"):
            self.execution.finish_many(txn.txn_id for txn in block.transactions)
        return response

    def _on_epoch_anchor(self, envelope: Envelope):
        """Record one sealed ordering-epoch anchor (DESIGN.md §13).

        The server keeps the chain it can vouch for: a stale or replayed
        epoch is rejected, and a directly consecutive anchor must extend
        the previous one's hash.  Anchors arriving after a gap (this server
        was crashed during the missed epochs) are accepted -- chain
        linkage across the gap is the auditor's job, not the server's.
        """
        anchor = envelope.payload["anchor"]
        last = self.epoch_anchors[-1] if self.epoch_anchors else None
        if last is not None:
            if anchor.epoch <= last.epoch:
                return {
                    "ok": False,
                    "server_id": self.server_id,
                    "error": f"stale epoch anchor {anchor.epoch} (have {last.epoch})",
                }
            if anchor.epoch == last.epoch + 1 and anchor.previous != last.anchor_hash():
                return {
                    "ok": False,
                    "server_id": self.server_id,
                    "error": f"epoch anchor {anchor.epoch} breaks the anchor chain",
                }
        self.epoch_anchors.append(anchor)
        return {"ok": True, "server_id": self.server_id, "epoch": anchor.epoch}

    # -- 2PC baseline messages ----------------------------------------------------------

    def _on_prepare(self, envelope: Envelope):
        return self.commitment.handle_prepare(
            envelope.payload["block"],
            coordinator=envelope.sender,
            client_requests=tuple(envelope.payload.get("client_requests", ())),
        )

    def _on_2pc_decision(self, envelope: Envelope):
        block = envelope.payload["block"]
        response = self.commitment.handle_2pc_decision(block)
        if response.get("ok"):
            self.execution.finish_many(txn.txn_id for txn in block.transactions)
        return response

    # -- coordinator failover (view change) ------------------------------------------------

    def _on_view_change(self, envelope: Envelope):
        """Report this cohort's commit frontier + stalled rounds to a successor."""
        payload = envelope.payload
        group = payload.get("group")
        return self.commitment.handle_view_change(
            group=tuple(group) if group is not None else None,
            deposed=payload["deposed"],
            new_view=int(payload["view"]),
        )

    def _on_new_view(self, envelope: Envelope):
        """Install the successor's new view; refuse older proposals from now on."""
        payload = envelope.payload
        group = payload.get("group")
        return self.commitment.handle_new_view(
            group=tuple(group) if group is not None else None,
            deposed=payload["deposed"],
            new_view=int(payload["view"]),
        )

    # -- crash recovery: serving catch-up state to a restarted peer ------------------------

    def _on_state_request(self, envelope: Envelope):
        """Serve the block range a recovering peer is missing.

        Blocks cross this boundary as *wire dicts* (a real deployment ships
        bytes): the requester decodes and fully re-verifies them, because
        this server -- like any server -- is untrusted.  The fault policy's
        :meth:`~repro.server.faults.FaultPolicy.tamper_state_response` hook
        models a malicious peer doctoring the payload.
        """
        from_height = int(envelope.payload["from_height"])
        if from_height < self.log.base_height:
            return {
                "server_id": self.server_id,
                "ok": False,
                "reason": (
                    f"blocks below height {self.log.base_height} were checkpointed away"
                ),
                "head_height": self.log.height,
                "checkpoint": (
                    self.latest_checkpoint.to_wire()
                    if self.latest_checkpoint is not None
                    else None
                ),
            }
        blocks = [
            block.to_wire() for block in self.log if block.height >= from_height
        ]
        blocks = self.faults.tamper_state_response(blocks)
        return {
            "server_id": self.server_id,
            "ok": True,
            "from_height": from_height,
            "head_height": self.log.height,
            "blocks": blocks,
        }

    # -- audit messages (Section 3.3) -----------------------------------------------------

    def _on_audit_log_request(self, envelope: Envelope):
        """Hand over (a copy of) the local log, and its checkpoint if truncated."""
        return {
            "server_id": self.server_id,
            "log": self.log.copy(),
            "checkpoint": self.latest_checkpoint,
        }

    def _on_audit_vo_request(self, envelope: Envelope):
        """Produce a Verification Object for one item, optionally at a version."""
        payload = envelope.payload
        item_id = payload["item_id"]
        at = payload.get("at")
        if item_id not in self.store:
            return {"server_id": self.server_id, "ok": False, "reason": "item not stored here"}
        if at is None or not self.store.multi_versioned:
            vo = self.store.verification_object(item_id)
            root = self.store.merkle_root()
            value = self.store.read(item_id).value
        else:
            timestamp = Timestamp(at[0], at[1]) if isinstance(at, (tuple, list)) else at
            vo, root = self.store.verification_object_at(item_id, timestamp)
            value = self.store.read_version(item_id, timestamp).value
        return {"server_id": self.server_id, "ok": True, "vo": vo, "root": root, "value": value}

    # -- convenience -----------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Value]:
        """Latest committed value of every locally stored item."""
        return self.store.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatabaseServer({self.server_id!r}, items={len(self.store)}, "
            f"log_height={self.log.height}, faults={self.faults.name!r})"
        )
