"""The commitment layer of a database server: the cohort side of TFCommit.

This module implements the per-phase behaviour of a cohort in TFCommit
(Section 4.3.1) and, for the baseline comparison of Section 6.1, the cohort
side of plain Two-Phase Commit:

* ``handle_get_vote`` -- <Vote, SchCommitment>: verify the coordinator's
  request and the encapsulated client request(s), compute the Schnorr
  commitment, locally validate the transactions touching this shard, and (if
  voting commit) compute the in-memory Merkle root reflecting the block's
  writes.
* ``handle_challenge`` -- <null, SchResponse>: check that the completed block
  is consistent with what this cohort voted (its own root is recorded
  verbatim, the decision matches the presence/absence of roots), recompute
  the Schnorr challenge from the block actually received, and produce the
  Schnorr response.
* ``handle_decision`` -- <Decision, null>: verify the collective signature on
  the finalised block, append it to the tamper-proof log, and apply the
  writes to the datastore.

Every handler measures its own compute time and reports it in the response
payload; the benchmark harness uses those measurements for simulated-time
latency accounting (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import ProtocolError, ServerCrashed
from repro.common.types import ServerId
from repro.core.tfcommit import ROUND_TIMEOUT_S
from repro.crypto.cosi import CoSiWitness, compute_challenge, cosi_verify
from repro.crypto.group import decompress_point
from repro.crypto.keys import KeyPair, PublicKey
from repro.ledger.block import Block, BlockDecision
from repro.ledger.log import TransactionLog
from repro.obs.timing import Stopwatch
from repro.server.faults import FaultPolicy, HonestBehavior
from repro.storage.apply import block_local_writes, block_store_commits
from repro.storage.datastore import DataStore
from repro.txn.occ import OccValidator
from repro.txn.transaction import Transaction


@dataclass
class RoundState:
    """Per-block state a cohort keeps between TFCommit phases.

    Keyed by :meth:`~repro.ledger.block.Block.round_key` -- the height for
    classic blocks, the terminated transaction set for dynamic-group blocks
    (whose height is assigned later by the ordering service).

    The round timer of the view-change protocol lives here: ``deadline`` is
    armed (virtual clock + :data:`~repro.core.tfcommit.ROUND_TIMEOUT_S`) when
    the cohort first sees the round's ``GET_VOTE``/``PREPARE`` and refreshed
    on each later phase message.  A round past its deadline whose coordinator
    has been deposed is *stalled*: the cohort hands its block and client
    requests to the view change for re-proposal.
    """

    height: int
    witness: Optional[CoSiWitness]
    involved: bool
    local_decision: BlockDecision
    reported_root: Optional[bytes] = None
    block: Optional[Block] = None
    mht_hashes: int = 0
    #: Monotone per-cohort registration counter, used to expire abandoned
    #: group rounds (whose placeholder height carries no ordering).
    generation: int = 0
    #: Who drove this round (the ``GET_VOTE``/``PREPARE`` envelope's sender).
    coordinator: Optional[ServerId] = None
    #: Coordinator view the proposal carried.
    view: int = 0
    #: Virtual time after which the round counts as stalled (``None`` when
    #: the deployment runs without a virtual clock: then deposition alone
    #: stalls the round).
    deadline: Optional[float] = None
    #: The signed client requests encapsulated in the proposal, kept so a
    #: successor coordinator can re-verify and re-propose the round.
    client_requests: Tuple = field(default_factory=tuple)


@dataclass
class VoteResult:
    """What a cohort returns from the vote phase."""

    server_id: ServerId
    involved: bool
    decision: str
    commitment: bytes
    root: Optional[bytes]
    compute_time: float
    mht_time: float
    mht_hashes: int
    abort_reason: str = ""

    def to_wire(self):
        return {
            "server_id": self.server_id,
            "involved": self.involved,
            "decision": self.decision,
            "commitment": self.commitment,
            "root": self.root,
            "compute_time": self.compute_time,
            "mht_time": self.mht_time,
            "mht_hashes": self.mht_hashes,
            "abort_reason": self.abort_reason,
        }


class CommitmentLayer:
    """Cohort-side commit logic for one database server."""

    #: A round still undecided after this many later rounds started is
    #: abandoned (its coordinator died or went silent without ROUND_FAILED).
    ROUND_STATE_TTL = 64

    def __init__(
        self,
        server_id: ServerId,
        keypair: KeyPair,
        store: DataStore,
        log: TransactionLog,
        faults: Optional[FaultPolicy] = None,
        on_block_applied=None,
    ) -> None:
        self.server_id = server_id
        self._keypair = keypair
        self._store = store
        self._log = log
        self._faults = faults or HonestBehavior()
        self._validator = OccValidator(store)
        self._rounds: Dict[tuple, RoundState] = {}
        self._round_generation = 0
        #: Highest coordinator view this cohort has accepted, per group
        #: (``None`` keys the classic full-cluster deployment).  Proposals
        #: from an older view are refused: a deposed coordinator cannot keep
        #: driving rounds after its group moved on.
        self._group_views: Dict[Optional[Tuple[ServerId, ...]], int] = {}
        #: Virtual clock of the deployment (if any); arms round deadlines.
        self._clock = None
        #: Observability bundle (if any); storage metrics report through it.
        self._obs = None
        #: Durability hook: called with each block after it is appended and
        #: applied, so the server can persist it to its state store.
        self._on_block_applied = on_block_applied

    def _maybe_crash(self) -> None:
        """Crash-fault injection point, consulted after each phase observation."""
        if self._faults.crash_now():
            raise ServerCrashed(f"{self.server_id} crashed (injected fault)")

    def attach_clock(self, clock) -> None:
        """Thread the deployment's virtual clock in (round timers need it)."""
        self._clock = clock

    def attach_obs(self, obs) -> None:
        """Report Merkle-sweep sizes and timings through ``obs``."""
        self._obs = obs

    def _obs_mht(self, hashes: int, seconds: float) -> None:
        if self._obs is not None and hashes:
            self._obs.metrics.counter("storage.mht_hashes", float(hashes))
            self._obs.metrics.observe("storage.mht_sweep_hashes", float(hashes))
            self._obs.metrics.counter("storage.mht_s", seconds)

    def _now(self) -> Optional[float]:
        return self._clock.now if self._clock is not None else None

    def _arm_deadline(self) -> Optional[float]:
        now = self._now()
        return now + ROUND_TIMEOUT_S if now is not None else None

    def current_view(self, group: Optional[Tuple[ServerId, ...]]) -> int:
        """The highest view this cohort accepted for ``group``."""
        return self._group_views.get(tuple(group) if group is not None else None, 0)

    @property
    def log(self) -> TransactionLog:
        return self._log

    @property
    def store(self) -> DataStore:
        return self._store

    @property
    def faults(self) -> FaultPolicy:
        return self._faults

    def set_faults(self, faults: FaultPolicy) -> None:
        self._faults = faults

    # -- helpers -----------------------------------------------------------------

    def _local_items(self, txn: Transaction) -> bool:
        return any(item in self._store for item in txn.items_accessed())

    def _local_writes(self, transactions) -> Dict[str, object]:
        """Writes from the batch that land on this shard, latest timestamp wins."""
        return block_local_writes(transactions, self._store)

    # -- TFCommit phase 2: <Vote, SchCommitment> ----------------------------------

    def _stale_view_refusal(self, block: Block, watch: Stopwatch) -> Dict[str, object]:
        """Refusal for a proposal from a view this cohort already moved past."""
        return {
            "server_id": self.server_id,
            "ok": False,
            "refused": True,
            "reason": (
                f"proposal view {block.view} is below this cohort's current view "
                f"{self.current_view(block.group)}"
            ),
            "compute_time": watch.elapsed(),
        }

    def handle_get_vote(
        self,
        partial_block: Block,
        force_abort_reason: str = "",
        coordinator: Optional[ServerId] = None,
        client_requests: Tuple = (),
    ) -> Union[VoteResult, Dict[str, object]]:
        """Validate the partial block and produce this cohort's vote.

        Every server (involved or not) computes a Schnorr commitment because
        every server co-signs the block; only involved servers validate and
        report a Merkle root (Section 4.3.1).  ``force_abort_reason`` is set
        by the server front-end when the encapsulated client request failed
        signature verification: the cohort still co-signs (the abort must be
        signed too) but votes abort.

        A proposal carrying a view below the cohort's current view for its
        group is refused outright (returns a refusal dict instead of a
        :class:`VoteResult`): the group already elected a successor, and
        honouring the deposed coordinator would let two coordinators drive
        rounds concurrently.
        """
        watch = Stopwatch()
        self._faults.observe_phase(
            "vote", partial_block.height, tuple(t.txn_id for t in partial_block.transactions)
        )
        self._maybe_crash()
        self._expire_stale_rounds()
        if partial_block.view < self.current_view(partial_block.group):
            return self._stale_view_refusal(partial_block, watch)
        if (
            partial_block.group is None
            and partial_block.height != self._log.height
            and self._faults.maintains_log_integrity()
        ):
            # A server that doctored its own log (truncation) is out of sync
            # by construction; it keeps participating rather than crashing
            # the round, and the audit catches the short log instead.  Group
            # blocks carry placeholder chain metadata (the ordering service
            # assigns the real height), so the check does not apply to them.
            raise ProtocolError(
                f"{self.server_id}: partial block height {partial_block.height} does not extend "
                f"local log of height {self._log.height}"
            )
        witness = CoSiWitness(self.server_id, self._keypair)
        witness.on_announcement(partial_block.signing_digest())
        commitment = self._faults.corrupt_commitment(witness.commit())

        involved = any(self._local_items(txn) for txn in partial_block.transactions)
        decision = BlockDecision.COMMIT
        abort_reason = ""
        root: Optional[bytes] = None
        mht_time = 0.0
        mht_hashes = 0
        if force_abort_reason:
            decision = BlockDecision.ABORT
            abort_reason = force_abort_reason
        elif involved:
            if not self._faults.skip_validation():
                for txn in partial_block.transactions:
                    if not self._local_items(txn):
                        continue
                    outcome = self._validator.validate(txn)
                    if outcome.abort:
                        decision = BlockDecision.ABORT
                        abort_reason = outcome.reason()
                        break
            if decision is BlockDecision.COMMIT:
                mht_watch = Stopwatch()
                speculative_root, mht_hashes = self._store.speculative_root(
                    self._local_writes(partial_block.transactions)
                )
                mht_time = mht_watch.elapsed()
                self._obs_mht(mht_hashes, mht_time)
                root = self._faults.corrupt_root(speculative_root)

        self._round_generation += 1
        self._rounds[partial_block.round_key()] = RoundState(
            height=partial_block.height,
            witness=witness,
            involved=involved,
            local_decision=decision,
            reported_root=root,
            block=partial_block,
            mht_hashes=mht_hashes,
            generation=self._round_generation,
            coordinator=coordinator,
            view=partial_block.view,
            deadline=self._arm_deadline(),
            client_requests=tuple(client_requests),
        )
        return VoteResult(
            server_id=self.server_id,
            involved=involved,
            decision=decision.value,
            commitment=commitment.encode(),
            root=root,
            compute_time=watch.elapsed(),
            mht_time=mht_time,
            mht_hashes=mht_hashes,
            abort_reason=abort_reason,
        )

    # -- TFCommit phase 4: <null, SchResponse> ------------------------------------

    def handle_challenge(
        self, challenge: int, aggregate_commitment: bytes, block: Block
    ) -> Dict[str, object]:
        """Check the completed block and produce the Schnorr response.

        A correct cohort refuses to respond (returns ``ok=False``) when:

        * the block's decision is inconsistent with the recorded roots
          (commit must carry a root from every involved server, abort must be
          missing at least one -- Section 4.3.2);
        * its own root in the block differs from the one it sent in its vote
          (Scenario 2, incorrect block creation);
        * the challenge does not equal ``H(X_sch || block)`` for the block it
          actually received (Lemma 5, equivocation detection).
        """
        watch = Stopwatch()
        self._faults.observe_phase(
            "challenge", block.height, tuple(t.txn_id for t in block.transactions)
        )
        self._maybe_crash()
        state = self._rounds.get(block.round_key())
        if state is None:
            raise ProtocolError(f"{self.server_id}: challenge for unknown round {block.round_key()}")
        state.block = block
        # The coordinator made progress; give it a fresh round-timer window.
        state.deadline = self._arm_deadline()

        def refusal(reason: str) -> Dict[str, object]:
            return {
                "server_id": self.server_id,
                "ok": False,
                "reason": reason,
                "response": None,
                "compute_time": watch.elapsed(),
            }

        if not self._faults.collude_on_challenge():
            involved_servers = set(block.roots)
            if block.decision is BlockDecision.COMMIT and state.involved:
                if self.server_id not in involved_servers:
                    return refusal("commit block is missing this cohort's root")
                if state.reported_root is not None and block.roots[self.server_id] != state.reported_root:
                    return refusal("coordinator recorded a different root than this cohort sent")
            if block.decision is BlockDecision.COMMIT and state.local_decision is BlockDecision.ABORT:
                return refusal("coordinator decided commit although this cohort voted abort")

            expected_challenge = compute_challenge(
                decompress_point(aggregate_commitment), block.signing_digest()
            )
            if expected_challenge != challenge:
                return refusal("challenge does not correspond to the received block")

        response = self._faults.corrupt_response(state.witness.respond(challenge))
        return {
            "server_id": self.server_id,
            "ok": True,
            "reason": "",
            "response": response,
            "compute_time": watch.elapsed(),
        }

    # -- TFCommit phase 5: <Decision, null> ----------------------------------------

    def handle_decision(
        self, block: Block, public_keys: Dict[str, PublicKey]
    ) -> Dict[str, object]:
        """Verify the finalised block's co-sign, log it, and apply its writes."""
        return self._accept_final_block(block, public_keys)

    def _accept_final_block(
        self, block: Block, public_keys: Dict[str, PublicKey]
    ) -> Dict[str, object]:
        """The shared terminal path: verify the co-sign, append, apply.

        Used for both the classic phase-5 decision broadcast and the scaled
        ordered-stream delivery.  A dynamic-group block must be signed by
        exactly its recorded group regardless of the delivery path --
        ``cosi_verify`` checks only the signers the signature itself lists,
        so without this a lone signer could forge "group" blocks.
        """
        watch = Stopwatch()
        self._faults.observe_phase(
            "decision", block.height, tuple(t.txn_id for t in block.transactions)
        )
        self._maybe_crash()
        state = self._rounds.pop(block.round_key(), None)

        reason = ""
        if block.cosign is None or not cosi_verify(
            block.cosign, block.signing_digest(), public_keys
        ):
            reason = "invalid collective signature on final block"
        elif block.group is not None and set(block.cosign.signer_ids) != set(block.group):
            reason = "block signer set does not match its recorded group"
        if reason:
            return {
                "server_id": self.server_id,
                "ok": False,
                "reason": reason,
                "compute_time": watch.elapsed(),
            }
        self._log.append(block, verify_link=self._faults.maintains_log_integrity())
        mht_hashes = 0
        if block.is_commit:
            mht_watch = Stopwatch()
            mht_hashes = self._apply_block(block)
            self._obs_mht(mht_hashes, mht_watch.elapsed())
        if self._on_block_applied is not None:
            self._on_block_applied(block)
        corruption = self._faults.post_commit_corruption()
        for item_id, value in corruption.items():
            if item_id in self._store:
                self._store.corrupt(item_id, value)
        self._faults.tamper_log(self._log)
        return {
            "server_id": self.server_id,
            "ok": True,
            "reason": "",
            "mht_hashes": mht_hashes,
            "compute_time": watch.elapsed(),
            "state_known": state is not None,
        }

    def _apply_block(self, block: Block) -> int:
        """Apply the whole block's write-set to the local shard in one sweep.

        The commits are handed to the datastore as a batch so the Merkle
        tree's dirty paths are recomputed once per block rather than once per
        transaction (see DESIGN.md on batched MHT accounting).
        """
        commits = []
        for commit_ts, local_writes, local_reads in block_store_commits(block, self._store):
            local_writes = self._faults.filter_applied_writes(local_writes)
            if local_writes or local_reads:
                commits.append((commit_ts, local_writes, local_reads))
        if not commits:
            return 0
        return self._store.apply_batch(commits)

    # -- scaled deployment: ordered-stream delivery (Section 4.6) -------------------

    def handle_ordered_block(
        self, block: Block, public_keys: Dict[str, PublicKey]
    ) -> Dict[str, object]:
        """Apply one block of the ordering service's global stream.

        Every server -- group member or not -- receives the stream; it checks
        the group's collective signature (over the group body digest, which
        the ordering service's re-chaining left untouched), verifies that the
        signer set is exactly the recorded group, appends the block to the
        global chain, and applies the writes landing on its shard.  Group
        members additionally release the round state they buffered while
        co-signing the block.
        """
        return self._accept_final_block(block, public_keys)

    # -- round-state hygiene ---------------------------------------------------------

    def handle_round_failed(self, round_key: tuple) -> Dict[str, object]:
        """Release the state of a round its coordinator abandoned.

        Rounds that fail at the challenge phase (refusals, bad co-sign) never
        receive a decision, so without this notification the cohort's
        :class:`RoundState` -- witness nonce, speculative root -- would leak
        forever.
        """
        released = self._rounds.pop(tuple(round_key), None)
        return {"server_id": self.server_id, "ok": True, "released": released is not None}

    def _expire_stale_rounds(self) -> None:
        """Defensive cleanup for rounds a (crashed or malicious) coordinator
        never terminated: classic rounds below the log height can no longer
        receive a decision that appends, and any round (group rounds
        included, whose placeholder height carries no ordering) that is
        still undecided ``ROUND_STATE_TTL`` registrations later is
        abandoned."""
        expiry_generation = self._round_generation - self.ROUND_STATE_TTL
        stale = [
            key
            for key, state in self._rounds.items()
            if (key[0] == "height" and state.height < self._log.height)
            or state.generation <= expiry_generation
        ]
        for key in stale:
            del self._rounds[key]

    def pending_round_count(self) -> int:
        """How many rounds this cohort is currently buffering state for."""
        return len(self._rounds)

    # -- coordinator failover (view change) --------------------------------------------

    def _stalled_rounds(
        self, group: Optional[Tuple[ServerId, ...]], deposed: ServerId
    ) -> List[RoundState]:
        """Armed rounds the deposed coordinator drove and then went silent on.

        A round is stalled once its timer expired (or immediately, without a
        virtual clock to time against): the cohort voted, buffered state, and
        no decision or explicit ROUND_FAILED ever arrived.  ``group=None``
        matches every round the deposed coordinator drove, whatever its
        group: in the scaled deployment one coordinator leads many dynamic
        groups, and a single view change deposes it from all of them.
        """
        key = tuple(group) if group is not None else None
        now = self._now()
        stalled = []
        for state in self._rounds.values():
            block = state.block
            if block is None or state.coordinator != deposed:
                continue
            if group is not None:
                block_key = tuple(block.group) if block.group is not None else None
                if block_key != key:
                    continue
            if state.deadline is not None and now is not None and now < state.deadline:
                continue
            stalled.append(state)
        return stalled

    def handle_view_change(
        self,
        group: Optional[Tuple[ServerId, ...]],
        deposed: ServerId,
        new_view: int,
    ) -> Dict[str, object]:
        """Answer a successor's ``VIEW_CHANGE`` solicitation.

        The cohort reports its commit frontier as a :class:`FrontierCertificate`
        (wire-encoded -- the successor treats it as untrusted bytes and
        re-verifies the head block's co-sign) plus every stalled round the
        deposed coordinator left behind, so the successor can re-propose from
        the maximum certified frontier.
        """
        # Deferred: repro.core.viewchange imports the coordinator machinery,
        # which must not be a prerequisite of the server package.
        from repro.core.viewchange import FrontierCertificate

        watch = Stopwatch()
        self._faults.observe_phase("view-change", self._log.height, ())
        self._maybe_crash()
        head = self._log.last_block()
        certificate = FrontierCertificate(
            server_id=self.server_id,
            view=self.current_view(group),
            height=self._log.height,
            head_hash=self._log.head_hash,
            head=head.to_wire() if head is not None else None,
        )
        stalled = [
            {
                "block": state.block,
                "client_requests": list(state.client_requests),
            }
            for state in self._stalled_rounds(group, deposed)
        ]
        return {
            "server_id": self.server_id,
            "ok": True,
            "view": self.current_view(group),
            "certificate": certificate.to_wire(),
            "stalled": stalled,
            "compute_time": watch.elapsed(),
        }

    def handle_new_view(
        self,
        group: Optional[Tuple[ServerId, ...]],
        deposed: ServerId,
        new_view: int,
    ) -> Dict[str, object]:
        """Install a new coordinator view for ``group``.

        Bumps the view gate (older proposals are refused from here on) and
        releases the round state of every pre-``new_view`` round of the group:
        the successor re-proposes the stalled ones under fresh round keys, so
        the old entries can never receive a legitimate decision again.
        """
        watch = Stopwatch()
        self._faults.observe_phase("new-view", self._log.height, ())
        self._maybe_crash()
        key = tuple(group) if group is not None else None
        #: Every group key the announcement fences.  The named group always;
        #: plus, when deposing across all groups (``group=None``), the group
        #: of every round the deposed coordinator left armed here -- so the
        #: successor's re-proposals (at ``new_view``) pass the gate while the
        #: deposed coordinator's zombies (below it) are refused.
        bumped = {key}
        dropped = 0
        for round_key in list(self._rounds):
            state = self._rounds[round_key]
            if state.coordinator != deposed or state.view >= new_view:
                continue
            block = state.block
            if block is not None and block.group is not None:
                block_key = tuple(block.group)
                if group is not None and block_key != key:
                    continue
                bumped.add(block_key)
            elif group is not None and block is not None:
                continue
            del self._rounds[round_key]
            dropped += 1
        for bumped_key in bumped:
            self._group_views[bumped_key] = max(
                self._group_views.get(bumped_key, 0), new_view
            )
        return {
            "server_id": self.server_id,
            "ok": True,
            "view": self._group_views[key],
            "released": dropped,
            "compute_time": watch.elapsed(),
        }

    # -- 2PC baseline (Section 6.1) --------------------------------------------------

    def handle_prepare(
        self,
        block: Block,
        coordinator: Optional[ServerId] = None,
        client_requests: Tuple = (),
    ) -> Dict[str, object]:
        """2PC prepare: validate the transactions touching this shard and vote.

        Arms the same round timer as TFCommit's vote phase: a 2PC cohort that
        prepared a round and never hears the decision has state the view
        change must collect (the paper's baseline enjoys the same liveness
        fix, keeping the comparison apples-to-apples).
        """
        watch = Stopwatch()
        self._faults.observe_phase(
            "vote", block.height, tuple(t.txn_id for t in block.transactions)
        )
        self._maybe_crash()
        self._expire_stale_rounds()
        if block.view < self.current_view(block.group):
            return self._stale_view_refusal(block, watch)
        decision = BlockDecision.COMMIT
        reason = ""
        involved = any(self._local_items(txn) for txn in block.transactions)
        if involved and not self._faults.skip_validation():
            for txn in block.transactions:
                if not self._local_items(txn):
                    continue
                outcome = self._validator.validate(txn)
                if outcome.abort:
                    decision = BlockDecision.ABORT
                    reason = outcome.reason()
                    break
        self._round_generation += 1
        self._rounds[block.round_key()] = RoundState(
            height=block.height,
            witness=None,
            involved=involved,
            local_decision=decision,
            block=block,
            generation=self._round_generation,
            coordinator=coordinator,
            view=block.view,
            deadline=self._arm_deadline(),
            client_requests=tuple(client_requests),
        )
        return {
            "server_id": self.server_id,
            "involved": involved,
            "decision": decision.value,
            "reason": reason,
            "compute_time": watch.elapsed(),
        }

    def handle_2pc_decision(self, block: Block) -> Dict[str, object]:
        """2PC decision: append the (unsigned) block and apply writes if commit."""
        watch = Stopwatch()
        self._faults.observe_phase(
            "decision", block.height, tuple(t.txn_id for t in block.transactions)
        )
        self._maybe_crash()
        self._rounds.pop(block.round_key(), None)
        self._log.append(block, verify_link=False)
        if block.is_commit:
            self._apply_block(block)
        if self._on_block_applied is not None:
            self._on_block_applied(block)
        return {
            "server_id": self.server_id,
            "ok": True,
            "compute_time": watch.elapsed(),
        }
