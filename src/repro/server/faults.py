"""Fault injection: the malicious behaviours of Sections 3.2 and 5.

A server "that fails maliciously can behave arbitrarily"; Fides does not
prevent these failures, it detects them in an audit.  Each fault class below
models one concrete misbehaviour from the paper so that the audit tests can
inject it and assert that the auditor (or a correct cohort) detects it and
pins it on the right server.

The hooks are consulted by :class:`~repro.server.execution.ExecutionLayer`,
:class:`~repro.server.commitment.CommitmentLayer`, and the TFCommit
coordinator; :class:`HonestBehavior` is the no-op default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.types import ItemId, ServerId, Value
from repro.crypto.group import CURVE_ORDER, Point, generator_multiply


@dataclass
class FaultContext:
    """Where in the protocol a fault hook is being consulted.

    The server layers update this context before consulting any hook, so a
    plan-driven policy (see :mod:`repro.faultsim`) can decide *when* to
    misbehave -- by protocol phase, block height, or transaction -- without
    the hooks themselves growing extra parameters.
    """

    #: Protocol phase: "execute", "vote", "challenge", "decision", or
    #: "coordinate" (coordinator-side block assembly).
    phase: str = ""
    #: Height of the block being processed; for execution-layer hooks this is
    #: the height the *next* block would carry (the local log height).
    block_height: Optional[int] = None
    #: Transactions in flight for the current hook consultation.
    txn_ids: Tuple[str, ...] = ()
    #: Virtual time of the phase being executed on the simulated event
    #: timeline (``None`` outside a simulation context); time-based triggers
    #: fire on this, so fault campaigns compose with pipelined rounds.
    sim_time: Optional[float] = None


class FaultPolicy:
    """Base class: every hook implements the *honest* behaviour.

    Subclasses override individual hooks to misbehave.  Hooks receive enough
    context to act and return the (possibly falsified) value the server will
    actually use or send.
    """

    #: Human-readable fault name recorded by tests and examples.
    name = "honest"

    # -- protocol context --------------------------------------------------------

    @property
    def context(self) -> FaultContext:
        """The phase context last observed (lazily created per instance)."""
        ctx = getattr(self, "_context", None)
        if ctx is None:
            ctx = FaultContext()
            self._context = ctx
        return ctx

    def attach_clock(self, clock) -> None:
        """Stamp subsequent phase observations with a virtual clock's time.

        Called by the server when the policy is installed (and re-attached
        across crash/recovery); ``None`` detaches.
        """
        self._sim_clock = clock

    def attach_obs(self, obs) -> None:
        """Report fault activity through an observability bundle.

        Plan-driven policies (see :mod:`repro.faultsim`) record each
        injection as a trace instant and a counter; ``None`` detaches.
        """
        self._obs = obs

    def observe_phase(
        self,
        phase: str,
        block_height: Optional[int] = None,
        txn_ids: Tuple[str, ...] = (),
    ) -> None:
        """Called by the server layers before any hook of that phase runs."""
        ctx = self.context
        ctx.phase = phase
        ctx.block_height = block_height
        ctx.txn_ids = tuple(txn_ids)
        clock = getattr(self, "_sim_clock", None)
        ctx.sim_time = clock.now if clock is not None else None

    # -- execution-layer hooks -------------------------------------------------

    def corrupt_read_value(self, item_id: ItemId, value: Value) -> Value:
        """Value returned for a read request (Scenario 1: incorrect reads)."""
        return value

    def drop_buffered_write(self, item_id: ItemId) -> bool:
        """Return True to silently discard a buffered write (incorrect writes)."""
        return False

    # -- commitment-layer hooks ------------------------------------------------

    def skip_validation(self) -> bool:
        """Return True to vote commit without running OCC validation (Lemma 3)."""
        return False

    def corrupt_commitment(self, commitment: Point) -> Point:
        """Schnorr commitment sent in the vote phase (Lemma 4)."""
        return commitment

    def corrupt_response(self, response: int) -> int:
        """Schnorr response sent in the response phase (Lemma 4)."""
        return response

    def corrupt_root(self, root: bytes) -> bytes:
        """MHT root the cohort reports in its vote."""
        return root

    def collude_on_challenge(self) -> bool:
        """Return True to skip the challenge-phase consistency checks.

        A colluding cohort responds to the challenge even when the completed
        block is inconsistent with what it voted (e.g. its root was silently
        dropped by the coordinator), which is how a malformed block can end
        up fully co-signed (Section 4.3.2).
        """
        return False

    # -- datastore hooks ---------------------------------------------------------

    def filter_applied_writes(self, writes: Dict[ItemId, Value]) -> Dict[ItemId, Value]:
        """Writes actually applied to the datastore when a block commits.

        Dropping entries here models "incorrect writes": the server voted on
        (and co-signed) the correct speculative root but never persisted the
        write, so its datastore silently diverges from the logged state.
        """
        return writes

    def post_commit_corruption(self) -> Dict[ItemId, Value]:
        """Items to silently overwrite in the datastore after a commit (Scenario 3)."""
        return {}

    # -- coordinator hooks -------------------------------------------------------

    def equivocate(self) -> bool:
        """Return True to send different decisions to different cohorts (Lemma 5)."""
        return False

    def fake_root_for(self, server_id: ServerId, root: Optional[bytes]) -> Optional[bytes]:
        """Root the coordinator records for ``server_id`` in the block (Scenario 2)."""
        return root

    # -- crash / recovery hooks --------------------------------------------------

    def crash_now(self) -> bool:
        """Return True for the server to crash at the current protocol point.

        Consulted by the commitment layer after each phase observation; a
        firing hook makes the server drop its volatile state mid-round, which
        the round's coordinator sees as the cohort becoming unreachable (a
        *liveness* fault -- never attributed as a protocol violation).
        """
        return False

    def tamper_state_response(self, blocks: list) -> list:
        """Catch-up blocks (wire dicts) this server serves to a recovering peer.

        A malicious peer returns a doctored list; the recovering server's
        verification (hash chain, co-sign, root replay) must reject it.
        """
        return blocks

    # -- log hooks -----------------------------------------------------------------

    def tamper_log(self, log) -> None:
        """Arbitrary post-hoc mutation of the local log copy (Lemmas 6-7)."""

    def maintains_log_integrity(self) -> bool:
        """False once this policy has doctored the local log.

        A server that truncated or forked its own log no longer enforces the
        hash-pointer check when appending new blocks (an honest append onto a
        doctored log would raise); the commitment layer consults this before
        every append.
        """
        return True


class HonestBehavior(FaultPolicy):
    """The default policy: every hook behaves correctly."""

    name = "honest"


@dataclass
class StaleReadFault(FaultPolicy):
    """Return a wrong/stale value for reads of ``target_item`` (Scenario 1).

    If ``wrong_value`` is None the fault replays the given ``stale_value``
    captured earlier (e.g. the pre-update balance in the paper's bank
    example); otherwise it returns ``wrong_value`` verbatim.
    """

    target_item: ItemId
    wrong_value: Value = None
    trigger_after: int = 0

    name = "stale-read"
    _reads_seen: int = 0

    def corrupt_read_value(self, item_id: ItemId, value: Value) -> Value:
        if item_id != self.target_item:
            return value
        self._reads_seen += 1
        if self._reads_seen <= self.trigger_after:
            return value
        return self.wrong_value


@dataclass
class DatastoreCorruptionFault(FaultPolicy):
    """Silently overwrite ``corruptions`` in the datastore after the next commit."""

    corruptions: Dict[ItemId, Value] = field(default_factory=dict)
    name = "datastore-corruption"
    _fired: bool = False

    def post_commit_corruption(self) -> Dict[ItemId, Value]:
        if self._fired:
            return {}
        self._fired = True
        return dict(self.corruptions)


class IsolationViolationFault(FaultPolicy):
    """Vote commit without validating, letting non-serializable txns through."""

    name = "isolation-violation"

    def skip_validation(self) -> bool:
        return True


@dataclass
class BadCosiFault(FaultPolicy):
    """Send incorrect cryptographic values during co-signing (Lemma 4)."""

    corrupt_commit: bool = False
    corrupt_resp: bool = True
    name = "bad-cosi"

    def corrupt_commitment(self, commitment: Point) -> Point:
        if not self.corrupt_commit:
            return commitment
        return generator_multiply(12345)

    def corrupt_response(self, response: int) -> int:
        if not self.corrupt_resp:
            return response
        return (response + 1) % CURVE_ORDER


class EquivocatingCoordinatorFault(FaultPolicy):
    """Coordinator sends commit to some cohorts and abort to others (Figure 8)."""

    name = "equivocating-coordinator"

    def equivocate(self) -> bool:
        return True


@dataclass
class FakeRootFault(FaultPolicy):
    """Coordinator records a bogus MHT root for ``victim`` in the block (Scenario 2)."""

    victim: ServerId
    fake_root: bytes = b"\x00" * 32
    name = "fake-root"

    def fake_root_for(self, server_id: ServerId, root: Optional[bytes]) -> Optional[bytes]:
        if server_id == self.victim:
            return self.fake_root
        return root


@dataclass
class LogTamperFault(FaultPolicy):
    """After the fact, overwrite a value inside an already-logged block (Lemma 6)."""

    target_height: int = 0
    name = "log-tamper"

    def tamper_log(self, log) -> None:
        from dataclasses import replace as dc_replace

        if len(log) <= self.target_height:
            return
        block = log[self.target_height]
        if not block.transactions:
            return
        txn = block.transactions[0]
        if not txn.write_set:
            return
        entry = txn.write_set[0]
        forged_entry = dc_replace(entry, new_value="__forged__")
        forged_txn = dc_replace(txn, write_set=(forged_entry,) + tuple(txn.write_set[1:]))
        forged_block = dc_replace(
            block, transactions=(forged_txn,) + tuple(block.transactions[1:])
        )
        log.tamper_replace(self.target_height, forged_block)


@dataclass
class CrashFault(FaultPolicy):
    """Crash the server once, in a given protocol phase (optionally at a height).

    One-shot by construction: a crashed server that recovers must not crash
    again the moment it rejoins, so the hook latches after firing.  ``phase``
    is one of the commitment phases ("vote", "challenge", "decision");
    ``at_height`` restricts the crash to rounds at or above that block height.
    """

    phase: str = "vote"
    at_height: Optional[int] = None
    name = "crash"
    _fired: bool = False

    def crash_now(self) -> bool:
        if self._fired:
            return False
        ctx = self.context
        if ctx.phase != self.phase:
            return False
        if self.at_height is not None and (
            ctx.block_height is None or ctx.block_height < self.at_height
        ):
            return False
        self._fired = True
        return True


@dataclass
class LogTruncationFault(FaultPolicy):
    """Drop the tail of the local log, keeping only ``keep_blocks`` blocks (Lemma 7)."""

    keep_blocks: int = 1
    name = "log-truncation"

    def tamper_log(self, log) -> None:
        log.truncate(min(self.keep_blocks, len(log)))
