"""Database servers: execution layer, commitment layer, and fault injection.

A Fides database server has four components (Figure 3 of the paper): an
execution layer, a commitment layer, a datastore, and a tamper-proof log.
:class:`~repro.server.server.DatabaseServer` wires them together;
:mod:`repro.server.faults` provides the malicious behaviours the evaluation
and the audit tests inject.
"""

from repro.server.execution import ExecutionLayer
from repro.server.commitment import CommitmentLayer
from repro.server.server import DatabaseServer
from repro.server.faults import (
    BadCosiFault,
    DatastoreCorruptionFault,
    EquivocatingCoordinatorFault,
    FakeRootFault,
    FaultPolicy,
    HonestBehavior,
    IsolationViolationFault,
    LogTamperFault,
    LogTruncationFault,
    StaleReadFault,
)

__all__ = [
    "BadCosiFault",
    "CommitmentLayer",
    "DatabaseServer",
    "DatastoreCorruptionFault",
    "EquivocatingCoordinatorFault",
    "ExecutionLayer",
    "FakeRootFault",
    "FaultPolicy",
    "HonestBehavior",
    "IsolationViolationFault",
    "LogTamperFault",
    "LogTruncationFault",
    "StaleReadFault",
]
