"""repro: a reproduction of "Fides: Managing Data on Untrusted Infrastructure".

The package implements the Fides auditable data management system and the
TFCommit trust-free atomic commitment protocol (Maiyya et al., ICDCS 2020),
together with every substrate the paper depends on -- Schnorr signatures and
Collective Signing, Merkle Hash Trees, a sharded versioned datastore, a
tamper-proof replicated log, a signed message network, the 2PC baseline, the
auditor, a YCSB-like workload generator, and the benchmark harness that
regenerates the paper's evaluation figures.

Quickstart::

    from repro import FidesSystem, SystemConfig
    from repro.txn.operations import ReadOp, WriteOp

    system = FidesSystem(SystemConfig(num_servers=3, items_per_shard=100, txns_per_block=1))
    outcome = system.run_transaction([ReadOp("item-00000000"), WriteOp("item-00000000", 42)])
    assert outcome.committed
    assert system.audit().ok
"""

from repro.common.config import SystemConfig
from repro.common.timestamps import Timestamp
from repro.core.fides import FidesSystem
from repro.core.tfcommit import TFCommitCoordinator
from repro.core.twopc import TwoPhaseCommitCoordinator
from repro.audit.auditor import Auditor
from repro.audit.report import AuditReport
from repro.workload.ycsb import YcsbWorkload

__version__ = "1.0.0"

__all__ = [
    "AuditReport",
    "Auditor",
    "FidesSystem",
    "SystemConfig",
    "TFCommitCoordinator",
    "Timestamp",
    "TwoPhaseCommitCoordinator",
    "YcsbWorkload",
    "__version__",
]
