"""How a block's transactions land on one shard -- the shared apply rules.

Two code paths must hand the datastore *byte-identical* batches for a given
block, or replayed Merkle roots would diverge from the live ones:

* the live path -- :class:`~repro.server.commitment.CommitmentLayer` applying
  a decided block (and computing the speculative root it votes with);
* the recovery path -- :mod:`repro.recovery` replaying persisted or
  peer-served blocks into a restored store.

Both import these functions, which makes the prefix-replay invariant ("apply
any log prefix from genesis or from a checkpoint and you reproduce the live
shard roots") a property of one definition instead of two copies.
"""

from __future__ import annotations

from typing import Dict, List

from repro.storage.datastore import DataStore


def block_local_writes(transactions, store: DataStore) -> Dict[str, object]:
    """Writes from a batch that land on ``store``'s shard, latest timestamp wins.

    The merge rule behind every speculative-root computation (TFCommit's vote
    phase) and behind catch-up verification's root replay.
    """
    writes: Dict[str, object] = {}
    for txn in sorted(transactions, key=lambda t: t.commit_ts):
        for entry in txn.write_set:
            if entry.item_id in store:
                writes[entry.item_id] = entry.new_value
    return writes


def block_store_commits(block, store: DataStore) -> List[tuple]:
    """The ``(commit_ts, writes, reads)`` triples ``block`` applies to ``store``.

    Ready to hand to :meth:`DataStore.apply_batch`; transactions touching
    nothing on this shard contribute no triple.
    """
    commits = []
    for txn in block.transactions:
        local_writes = {
            entry.item_id: entry.new_value
            for entry in txn.write_set
            if entry.item_id in store
        }
        local_reads = [entry.item_id for entry in txn.read_set if entry.item_id in store]
        if local_writes or local_reads:
            commits.append((txn.commit_ts, local_writes, local_reads))
    return commits
