"""Datastore substrate: versioned records, shards, and partitioning.

Fides partitions the database into shards, one per server (Section 3.1).
Each data item carries a read timestamp ``rts`` and a write timestamp ``wts``
recording the last transaction that read / wrote it; the datastore can be
single- or multi-versioned (Section 4.2.1).
"""

from repro.storage.record import RecordVersion, VersionedRecord
from repro.storage.datastore import DataStore
from repro.storage.shard import Shard, ShardMap

__all__ = ["DataStore", "RecordVersion", "Shard", "ShardMap", "VersionedRecord"]
