"""Versioned data records with read/write timestamps.

Every data item in Fides carries an associated read timestamp ``rts`` and
write timestamp ``wts`` -- the timestamps of the last committed transaction
that read / wrote the item (Section 3.1).  Multi-versioned datastores keep
one :class:`RecordVersion` per committed write so that audits can examine any
historical version and the application can roll back to the last sanitised
version after a detected failure (Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import StorageError
from repro.common.timestamps import Timestamp
from repro.common.types import ItemId, Value


@dataclass(frozen=True)
class RecordVersion:
    """One committed version of a data item.

    ``wts`` is the commit timestamp of the transaction that wrote this
    version; ``rts`` is the largest commit timestamp of any transaction that
    has read this version so far (it is updated in place by replacing the
    version object, keeping the dataclass frozen).
    """

    value: Value
    wts: Timestamp
    rts: Timestamp

    def with_rts(self, rts: Timestamp) -> "RecordVersion":
        """Return a copy of this version with its read timestamp advanced."""
        if rts < self.rts:
            return self
        return RecordVersion(self.value, self.wts, rts)

    def to_wire(self):
        return {"value": self.value, "wts": self.wts.as_tuple(), "rts": self.rts.as_tuple()}


@dataclass
class VersionedRecord:
    """The full version chain of one data item.

    Versions are kept in commit-timestamp order (oldest first).  For a
    single-versioned datastore the chain is trimmed to length one after every
    write.
    """

    item_id: ItemId
    versions: List[RecordVersion] = field(default_factory=list)

    @property
    def latest(self) -> RecordVersion:
        """The most recently committed version."""
        if not self.versions:
            raise StorageError(f"item {self.item_id!r} has no versions")
        return self.versions[-1]

    @property
    def value(self) -> Value:
        return self.latest.value

    @property
    def rts(self) -> Timestamp:
        return self.latest.rts

    @property
    def wts(self) -> Timestamp:
        return self.latest.wts

    def version_count(self) -> int:
        return len(self.versions)

    def version_at(self, timestamp: Timestamp) -> RecordVersion:
        """Return the version visible at ``timestamp``.

        This is the newest version whose ``wts`` is <= ``timestamp``; used by
        per-version audits of multi-versioned datastores.
        """
        candidate: Optional[RecordVersion] = None
        for version in self.versions:
            if version.wts <= timestamp:
                candidate = version
            else:
                break
        if candidate is None:
            raise StorageError(
                f"item {self.item_id!r} has no version at or before {timestamp}"
            )
        return candidate

    def record_read(self, timestamp: Timestamp) -> None:
        """Advance the latest version's read timestamp to ``timestamp``."""
        self.versions[-1] = self.latest.with_rts(timestamp)

    def append_version(self, value: Value, wts: Timestamp, multi_versioned: bool = True) -> None:
        """Install a new committed version written at ``wts``.

        For single-versioned datastores older versions are discarded.
        """
        new_version = RecordVersion(value=value, wts=wts, rts=wts)
        if multi_versioned:
            self.versions.append(new_version)
        else:
            self.versions = [new_version]

    def rollback_to(self, timestamp: Timestamp) -> int:
        """Discard every version written after ``timestamp``.

        Returns the number of versions removed.  This supports the paper's
        recoverability story: after an audit flags a corruption at some
        version, the data can be reset to the last sanitised version.
        """
        kept = [v for v in self.versions if v.wts <= timestamp]
        removed = len(self.versions) - len(kept)
        if not kept:
            raise StorageError(
                f"rollback of {self.item_id!r} to {timestamp} would remove every version"
            )
        self.versions = kept
        return removed
