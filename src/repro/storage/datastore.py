"""The per-server datastore.

A :class:`DataStore` holds the versioned records of one shard and exposes the
operations the execution and commitment layers need:

* timestamped reads (returning value + ``rts``/``wts``, Section 4.2.1);
* atomic application of a committed transaction's buffered writes, which
  installs new versions and advances the read/write timestamps of every item
  the transaction accessed;
* Merkle-tree maintenance: the datastore keeps an incremental
  :class:`~repro.crypto.merkle.MerkleTree` over its items so TFCommit's vote
  phase can produce an up-to-date root in memory without touching disk state
  (Section 4.3.1), and audits can request Verification Objects at any version
  (Section 4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.common.errors import StorageError
from repro.common.timestamps import Timestamp
from repro.common.types import ItemId, Value
from repro.crypto.merkle import MerkleTree, VerificationObject
from repro.storage.record import RecordVersion, VersionedRecord


@dataclass(frozen=True)
class ReadResult:
    """Result of a timestamped read: the value plus its current timestamps."""

    item_id: ItemId
    value: Value
    rts: Timestamp
    wts: Timestamp

    def to_wire(self):
        return {
            "item_id": self.item_id,
            "value": self.value,
            "rts": self.rts.as_tuple(),
            "wts": self.wts.as_tuple(),
        }


class DataStore:
    """Versioned key-value store for a single shard.

    Parameters
    ----------
    items:
        Initial ``item_id -> value`` contents; all initial versions carry the
        zero timestamp.
    multi_versioned:
        Keep the full version chain (True, the default used in the paper's
        audit discussion) or only the latest version.
    """

    def __init__(self, items: Mapping[ItemId, Value], multi_versioned: bool = True) -> None:
        zero = Timestamp.zero()
        self._multi_versioned = multi_versioned
        self._records: Dict[ItemId, VersionedRecord] = {
            item_id: VersionedRecord(
                item_id=item_id,
                versions=[RecordVersion(value=value, wts=zero, rts=zero)],
            )
            for item_id, value in items.items()
        }
        self._merkle = MerkleTree.from_items({k: v for k, v in items.items()})
        self._mht_node_updates = 0
        #: Historical trees derived for audit VO requests, keyed by the audit
        #: timestamp; invalidated whenever the stored state changes.
        self._historical_trees: Dict[Tuple, MerkleTree] = {}

    # -- basic queries ------------------------------------------------------

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def multi_versioned(self) -> bool:
        return self._multi_versioned

    def item_ids(self) -> List[ItemId]:
        return list(self._records)

    def record(self, item_id: ItemId) -> VersionedRecord:
        """Return the full versioned record of ``item_id``."""
        try:
            return self._records[item_id]
        except KeyError:
            raise StorageError(f"unknown item {item_id!r}") from None

    def read(self, item_id: ItemId) -> ReadResult:
        """Read the latest committed value and timestamps of ``item_id``."""
        record = self.record(item_id)
        latest = record.latest
        return ReadResult(item_id=item_id, value=latest.value, rts=latest.rts, wts=latest.wts)

    def read_version(self, item_id: ItemId, at: Timestamp) -> ReadResult:
        """Read the value of ``item_id`` as of commit timestamp ``at``."""
        record = self.record(item_id)
        version = record.version_at(at)
        return ReadResult(item_id=item_id, value=version.value, rts=version.rts, wts=version.wts)

    # -- commit-time mutation -----------------------------------------------

    def apply_commit(
        self,
        commit_ts: Timestamp,
        writes: Mapping[ItemId, Value],
        reads: Iterable[ItemId] = (),
    ) -> int:
        """Apply a committed transaction to the datastore.

        Installs a new version for every written item, advances ``rts`` of
        every read item, and keeps the incremental Merkle tree in sync.
        Returns the number of Merkle node hashes recomputed (the quantity the
        benchmark harness reports as MHT update work).
        """
        return self.apply_batch([(commit_ts, writes, reads)])

    def apply_batch(
        self,
        commits: Sequence[Tuple[Timestamp, Mapping[ItemId, Value], Iterable[ItemId]]],
    ) -> int:
        """Apply a whole block's committed transactions in one Merkle sweep.

        ``commits`` is a sequence of ``(commit_ts, writes, reads)`` triples;
        they are applied to the versioned records in commit-timestamp order,
        but the Merkle tree is updated once at the end with the final value
        of every touched leaf (latest write wins), so shared ancestors are
        hashed a single time per block instead of once per transaction.
        Returns the number of Merkle node hashes recomputed.
        """
        ordered = sorted(commits, key=lambda commit: commit[0])
        merged_writes: Dict[ItemId, Value] = {}
        for commit_ts, writes, reads in ordered:
            unknown = [
                item for item in list(writes) + list(reads) if item not in self._records
            ]
            if unknown:
                raise StorageError(f"commit touches unknown items: {unknown}")
        for commit_ts, writes, reads in ordered:
            for item_id in reads:
                self._records[item_id].record_read(commit_ts)
            for item_id, value in writes.items():
                self._records[item_id].append_version(value, commit_ts, self._multi_versioned)
                merged_writes[item_id] = value
        mht_work = self._merkle.update_many(merged_writes) if merged_writes else 0
        self._mht_node_updates += mht_work
        if merged_writes:
            self._historical_trees.clear()
        return mht_work

    def corrupt(self, item_id: ItemId, value: Value) -> None:
        """Silently overwrite the latest stored value (fault injection only).

        This models the "data corruption" fault of Section 5, Scenario 3: the
        value changes in storage but the Merkle tree / log were built from the
        correct value, so a later audit detects the mismatch.
        """
        record = self.record(item_id)
        latest = record.latest
        record.versions[-1] = RecordVersion(value=value, wts=latest.wts, rts=latest.rts)
        self._historical_trees.clear()

    def rollback_to(self, timestamp: Timestamp) -> int:
        """Roll every record back to its last version at or before ``timestamp``."""
        removed = 0
        for record in self._records.values():
            if record.version_count() > 1:
                removed += record.rollback_to(timestamp)
        self._rebuild_merkle()
        return removed

    # -- Merkle integration --------------------------------------------------

    def merkle_root(self) -> bytes:
        """Root of the incremental Merkle tree over the *stored* values."""
        return self._merkle.root

    def speculative_root(self, writes: Mapping[ItemId, Value]) -> Tuple[bytes, int]:
        """Merkle root the shard would have if ``writes`` were applied.

        Used during TFCommit's vote phase: the MHT is computed in memory with
        the transaction's updates assumed committed, without touching the
        datastore (Section 4.3.1).  Returns ``(root, mht_hashes_recomputed)``
        and leaves the tree exactly as it was.
        """
        unknown = [item for item in writes if item not in self._records]
        if unknown:
            raise StorageError(f"speculative writes touch unknown items: {unknown}")
        originals = {item_id: self._merkle.value_of(item_id) for item_id in writes}
        work = self._merkle.update_many(writes)
        root = self._merkle.root
        self._merkle.update_many(originals)
        return root, work

    def verification_object(self, item_id: ItemId) -> VerificationObject:
        """VO authenticating ``item_id`` against the *current* Merkle root."""
        return self._merkle.verification_object(item_id)

    def verification_object_at(
        self, item_id: ItemId, at: Timestamp
    ) -> Tuple[VerificationObject, bytes]:
        """VO and root for the datastore state as of version ``at``.

        Only meaningful for multi-versioned datastores: the server rebuilds
        (in memory) the shard as it stood at commit timestamp ``at`` and
        produces the VO against that historical tree, exactly what the auditor
        asks a server for in Section 4.2.2.
        """
        if not self._multi_versioned:
            raise StorageError("historical verification objects require a multi-versioned store")
        tree = self._historical_tree(at)
        return tree.verification_object(item_id), tree.root

    def _historical_tree(self, at: Timestamp) -> MerkleTree:
        """The shard's Merkle tree as it stood at commit timestamp ``at``.

        Instead of rebuilding the whole tree per VO request, the current
        incremental tree is cloned and only the leaves whose historical value
        differs are re-hashed in one batched sweep; the resulting tree is
        cached so an audit asking for every written item of a block pays the
        derivation once.  The cache is cleared on any state change (including
        injected corruption, which alters the values the records report).
        """
        key = at.as_tuple()
        tree = self._historical_trees.get(key)
        if tree is None:
            diff = {}
            for other_id, record in self._records.items():
                historical_value = record.version_at(at).value
                if historical_value != self._merkle.value_of(other_id):
                    diff[other_id] = historical_value
            tree = self._merkle.clone()
            tree.update_many(diff)
            if len(self._historical_trees) >= 8:
                self._historical_trees.pop(next(iter(self._historical_trees)))
            self._historical_trees[key] = tree
        return tree

    def snapshot(self) -> Dict[ItemId, Value]:
        """Latest committed value of every item (id -> value)."""
        return {item_id: record.value for item_id, record in self._records.items()}

    # -- durable-state support (crash recovery) -------------------------------

    def export_state(self) -> Dict[str, object]:
        """Wire-encodable dump of every record's full version chain.

        The shape round-trips through :func:`~repro.common.encoding.canonical_encode`
        / ``canonical_decode`` and is what the recovery
        :class:`~repro.recovery.statestore.StateStore` persists in snapshot
        records; :meth:`import_state` is the exact inverse (byte-identical
        Merkle root, identical rts/wts on every version).
        """
        return {
            "multi_versioned": self._multi_versioned,
            "items": {
                item_id: [version.to_wire() for version in record.versions]
                for item_id, record in self._records.items()
            },
        }

    @classmethod
    def import_state(cls, state: Mapping[str, object]) -> "DataStore":
        """Rebuild a datastore from an :meth:`export_state` dump."""
        store = cls.__new__(cls)
        store._multi_versioned = bool(state["multi_versioned"])
        records: Dict[ItemId, VersionedRecord] = {}
        for item_id, versions in state["items"].items():
            if not versions:
                raise StorageError(f"persisted item {item_id!r} has no versions")
            records[item_id] = VersionedRecord(
                item_id=item_id,
                versions=[
                    RecordVersion(
                        value=version["value"],
                        wts=Timestamp(*version["wts"]),
                        rts=Timestamp(*version["rts"]),
                    )
                    for version in versions
                ],
            )
        store._records = records
        store._merkle = MerkleTree.from_items(
            {item_id: record.value for item_id, record in records.items()}
        )
        store._mht_node_updates = 0
        store._historical_trees = {}
        return store

    def _rebuild_merkle(self) -> None:
        self._merkle = MerkleTree.from_items(self.snapshot())
        self._historical_trees.clear()

    @property
    def mht_node_updates(self) -> int:
        """Total Merkle node hashes recomputed by committed writes so far."""
        return self._mht_node_updates
