"""Shards and the shard map (partitioning of items onto servers).

The data is "partitioned into multiple shards and distributed on these
servers" (Section 3.1).  A :class:`Shard` couples a shard id with its
:class:`~repro.storage.datastore.DataStore`; a :class:`ShardMap` is the
directory clients use to find which server stores which item -- the paper's
"lookup and directory service for the database partitions" (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from repro.common.config import SystemConfig
from repro.common.errors import StorageError
from repro.common.types import ItemId, ServerId, Value, make_item_id
from repro.storage.datastore import DataStore


@dataclass
class Shard:
    """One data shard: an id, the owning server, and its datastore."""

    shard_id: str
    server_id: ServerId
    store: DataStore

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self.store

    def __len__(self) -> int:
        return len(self.store)


class ShardMap:
    """Directory mapping every item id to the server that stores it."""

    def __init__(self, assignment: Mapping[ItemId, ServerId]) -> None:
        self._assignment: Dict[ItemId, ServerId] = dict(assignment)
        self._by_server: Dict[ServerId, List[ItemId]] = {}
        for item_id, server_id in self._assignment.items():
            self._by_server.setdefault(server_id, []).append(item_id)

    def server_for(self, item_id: ItemId) -> ServerId:
        """Return the server storing ``item_id``."""
        try:
            return self._assignment[item_id]
        except KeyError:
            raise StorageError(f"no server stores item {item_id!r}") from None

    def items_of(self, server_id: ServerId) -> List[ItemId]:
        """Return the item ids stored by ``server_id``."""
        return list(self._by_server.get(server_id, []))

    def servers_for(self, item_ids: Iterable[ItemId]) -> List[ServerId]:
        """Return the distinct servers covering ``item_ids`` (sorted)."""
        return sorted({self.server_for(item_id) for item_id in item_ids})

    def all_items(self) -> List[ItemId]:
        return list(self._assignment)

    def all_servers(self) -> List[ServerId]:
        return sorted(self._by_server)

    def __len__(self) -> int:
        return len(self._assignment)


def build_uniform_partition(config: SystemConfig, initial_value: Value = 0):
    """Create per-server item dictionaries and the matching shard map.

    Items are named ``item-00000000`` ... and assigned round-robin-free:
    server ``i`` owns the contiguous range
    ``[i * items_per_shard, (i+1) * items_per_shard)``, mirroring the paper's
    setup of one shard of ``items_per_shard`` items per server.

    Returns ``(per_server_items, shard_map)``.
    """
    per_server: Dict[ServerId, Dict[ItemId, Value]] = {}
    assignment: Dict[ItemId, ServerId] = {}
    for server_index, server_id in enumerate(config.server_ids):
        items = {}
        base = server_index * config.items_per_shard
        for offset in range(config.items_per_shard):
            item_id = make_item_id(base + offset)
            items[item_id] = initial_value
            assignment[item_id] = server_id
        per_server[server_id] = items
    return per_server, ShardMap(assignment)
