"""The tamper-proof transaction log kept by every server.

The log is "a linked-list of transaction blocks linked using cryptographic
hash pointers" (Section 3.1).  Every server appends the same co-signed block
after a successful TFCommit round, producing a globally replicated log.

Besides the honest operations (append, iterate, verify) this module exposes
*tampering helpers* -- ``tamper_replace``, ``tamper_reorder``, ``truncate`` --
used by the fault-injection tests to produce exactly the malicious logs of
Lemmas 6 and 7 so the auditor's detection can be exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.common.errors import ValidationError
from repro.crypto.cosi import cosi_verify
from repro.crypto.keys import PublicKey
from repro.ledger.block import Block, genesis_previous_hash


@dataclass(frozen=True)
class LogVerificationResult:
    """Outcome of verifying one server's log copy.

    ``valid_prefix_length`` is the number of leading blocks that verify; the
    first invalid block (if any) is reported with the reason.
    """

    valid: bool
    length: int
    valid_prefix_length: int
    first_invalid_height: Optional[int] = None
    reason: str = ""


class TransactionLog:
    """One server's copy of the globally replicated block log."""

    def __init__(self, blocks: Optional[Sequence[Block]] = None) -> None:
        self._blocks: List[Block] = list(blocks) if blocks else []

    # -- honest operations ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __getitem__(self, index: int) -> Block:
        return self._blocks[index]

    @property
    def blocks(self) -> List[Block]:
        return list(self._blocks)

    @property
    def head_hash(self) -> bytes:
        """Hash pointer to be embedded in the next block."""
        if not self._blocks:
            return genesis_previous_hash()
        return self._blocks[-1].block_hash()

    @property
    def height(self) -> int:
        """Height the *next* block should carry."""
        return len(self._blocks)

    def last_block(self) -> Optional[Block]:
        return self._blocks[-1] if self._blocks else None

    def append(self, block: Block, verify_link: bool = True) -> None:
        """Append a finalised block.

        A correct server checks the hash pointer before appending; fault
        injection can disable the check to model sloppy/malicious servers.
        """
        if verify_link:
            if block.height != len(self._blocks):
                raise ValidationError(
                    f"block height {block.height} does not extend log of length {len(self._blocks)}"
                )
            if block.previous_hash != self.head_hash:
                raise ValidationError("block previous_hash does not match log head")
            if block.cosign is None:
                raise ValidationError("refusing to append a block without a collective signature")
        self._blocks.append(block)

    def committed_transactions(self):
        """Yield ``(height, transaction)`` for every transaction in committed blocks."""
        for block in self._blocks:
            if block.is_commit:
                for txn in block.transactions:
                    yield block.height, txn

    def copy(self) -> "TransactionLog":
        return TransactionLog(self._blocks)

    # -- verification ---------------------------------------------------------

    def verify(self, public_keys: Dict[str, PublicKey]) -> LogVerificationResult:
        """Verify hash chaining and every block's collective signature.

        This is the procedure the auditor runs on each collected log copy to
        decide whether it is correct (Lemma 6) before picking the longest
        correct copy (Lemma 7).
        """
        expected_prev = genesis_previous_hash()
        for index, block in enumerate(self._blocks):
            if block.height != index:
                return LogVerificationResult(
                    False, len(self._blocks), index, index, "block height out of sequence"
                )
            if block.previous_hash != expected_prev:
                return LogVerificationResult(
                    False, len(self._blocks), index, index, "broken hash pointer"
                )
            if block.cosign is None:
                return LogVerificationResult(
                    False, len(self._blocks), index, index, "missing collective signature"
                )
            if block.group is not None and set(block.cosign.signer_ids) != set(block.group):
                # A dynamic-group block must be signed by exactly its group:
                # a subset could not have run the round, and extra signers
                # mean the recorded group membership was doctored.
                return LogVerificationResult(
                    False,
                    len(self._blocks),
                    index,
                    index,
                    "group block signer set does not match its recorded group",
                )
            if not cosi_verify(block.cosign, block.signing_digest(), public_keys):
                return LogVerificationResult(
                    False, len(self._blocks), index, index, "invalid collective signature"
                )
            expected_prev = block.block_hash()
        return LogVerificationResult(True, len(self._blocks), len(self._blocks))

    def is_prefix_of(self, other: "TransactionLog") -> bool:
        """True if this log is a (possibly equal) prefix of ``other``."""
        if len(self) > len(other):
            return False
        return all(
            mine.block_hash() == theirs.block_hash()
            for mine, theirs in zip(self._blocks, other._blocks)
        )

    # -- tampering helpers (fault injection only) ------------------------------

    def tamper_replace(self, height: int, block: Block) -> None:
        """Replace the block at ``height`` without any checks (malicious)."""
        self._blocks[height] = block

    def tamper_reorder(self, height_a: int, height_b: int) -> None:
        """Swap two blocks in place (malicious reordering of history)."""
        self._blocks[height_a], self._blocks[height_b] = (
            self._blocks[height_b],
            self._blocks[height_a],
        )

    def truncate(self, keep: int) -> None:
        """Drop every block after the first ``keep`` blocks (tail omission)."""
        if keep < 0:
            raise ValidationError("cannot keep a negative number of blocks")
        del self._blocks[keep:]

    def drop_prefix(self, count: int) -> int:
        """Drop the first ``count`` blocks (checkpointing support).

        Unlike the tampering helpers this is an *honest* operation: it is only
        safe when the dropped prefix is covered by a collectively signed
        checkpoint (see :mod:`repro.ledger.checkpoint`).  Returns the number
        of blocks removed.
        """
        if count < 0:
            raise ValidationError("cannot drop a negative number of blocks")
        count = min(count, len(self._blocks))
        del self._blocks[:count]
        return count


def select_correct_log(
    logs: Dict[str, TransactionLog], public_keys: Dict[str, PublicKey]
) -> tuple:
    """Pick the correct and complete log out of the copies collected from all servers.

    Implements the auditor's first step (Section 3.3 / Lemma 7): verify every
    copy, keep the valid ones, and return the longest (ties broken by server
    id for determinism).  Returns ``(server_id, log, per_server_results)``.

    Raises
    ------
    ValidationError
        If no copy verifies -- which the failure model rules out (at least one
        server is correct), so hitting this means the audit inputs are bad.
    """
    results = {server: log.verify(public_keys) for server, log in logs.items()}
    valid = [(server, logs[server]) for server, result in results.items() if result.valid]
    if not valid:
        raise ValidationError("no correct log copy found among the collected logs")
    best_server, best_log = max(valid, key=lambda pair: (len(pair[1]), pair[0]))
    return best_server, best_log, results
