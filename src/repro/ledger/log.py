"""The tamper-proof transaction log kept by every server.

The log is "a linked-list of transaction blocks linked using cryptographic
hash pointers" (Section 3.1).  Every server appends the same co-signed block
after a successful TFCommit round, producing a globally replicated log.

Besides the honest operations (append, iterate, verify) this module exposes
*tampering helpers* -- ``tamper_replace``, ``tamper_reorder``, ``truncate`` --
used by the fault-injection tests to produce exactly the malicious logs of
Lemmas 6 and 7 so the auditor's detection can be exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.common.errors import ValidationError
from repro.crypto.cosi import cosi_verify
from repro.crypto.keys import PublicKey
from repro.ledger.block import Block, genesis_previous_hash


@dataclass(frozen=True)
class LogVerificationResult:
    """Outcome of verifying one server's log copy.

    ``valid_prefix_length`` is the number of leading blocks that verify; the
    first invalid block (if any) is reported with the reason.
    """

    valid: bool
    length: int
    valid_prefix_length: int
    first_invalid_height: Optional[int] = None
    reason: str = ""


def verify_block_cosign(block: Block, public_keys: Dict[str, PublicKey]) -> str:
    """Check one block's collective signature; returns "" or a failure reason.

    The single source of truth for the co-sign rules shared by full-log
    verification, checkpoint-suffix verification, and recovery catch-up:

    * a collective signature must be present and verify over the block's
      signing digest (group body digest for dynamic-group blocks);
    * a dynamic-group block must be signed by *exactly* its recorded group --
      a subset could not have run the round, and extra signers mean the
      recorded membership was doctored.
    """
    if block.cosign is None:
        return "missing collective signature"
    if block.group is not None and set(block.cosign.signer_ids) != set(block.group):
        return "group block signer set does not match its recorded group"
    if not cosi_verify(block.cosign, block.signing_digest(), public_keys):
        return "invalid collective signature"
    return ""


class TransactionLog:
    """One server's copy of the globally replicated block log.

    A log can be *checkpoint-truncated* (Section 3.3): ``base_height`` blocks
    at the front were dropped under a collectively signed checkpoint whose
    head hash is ``base_hash``.  Heights stay **global**: the next block
    appended to a truncated log carries ``base_height + len(blocks)``, so
    truncation is invisible to the commit protocol and to hash chaining.
    Indexing (``log[i]``, iteration) remains positional over the *retained*
    blocks; :meth:`block_at_height` maps a global height to its block.
    """

    def __init__(
        self,
        blocks: Optional[Sequence[Block]] = None,
        base_height: int = 0,
        base_hash: Optional[bytes] = None,
    ) -> None:
        if base_height < 0:
            raise ValidationError("base_height must be >= 0")
        if base_height > 0 and base_hash is None:
            raise ValidationError("a truncated log needs the checkpoint head hash")
        self._blocks: List[Block] = list(blocks) if blocks else []
        self._base_height = base_height
        self._base_hash = base_hash if base_hash is not None else genesis_previous_hash()

    # -- honest operations ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def __getitem__(self, index: int) -> Block:
        return self._blocks[index]

    @property
    def blocks(self) -> List[Block]:
        return list(self._blocks)

    @property
    def base_height(self) -> int:
        """Number of leading blocks dropped under a checkpoint (0 = full log)."""
        return self._base_height

    @property
    def base_hash(self) -> bytes:
        """Hash the first retained block chains onto (genesis or checkpoint head)."""
        return self._base_hash

    @property
    def head_hash(self) -> bytes:
        """Hash pointer to be embedded in the next block."""
        if not self._blocks:
            return self._base_hash
        return self._blocks[-1].block_hash()

    @property
    def height(self) -> int:
        """Global height the *next* block should carry."""
        return self._base_height + len(self._blocks)

    def block_at_height(self, height: int) -> Optional[Block]:
        """The retained block carrying global ``height`` (None if dropped/absent)."""
        index = height - self._base_height
        if 0 <= index < len(self._blocks):
            return self._blocks[index]
        return None

    def last_block(self) -> Optional[Block]:
        return self._blocks[-1] if self._blocks else None

    def append(self, block: Block, verify_link: bool = True) -> None:
        """Append a finalised block.

        A correct server checks the hash pointer before appending; fault
        injection can disable the check to model sloppy/malicious servers.
        """
        if verify_link:
            if block.height != self.height:
                raise ValidationError(
                    f"block height {block.height} does not extend log of height {self.height}"
                )
            if block.previous_hash != self.head_hash:
                raise ValidationError("block previous_hash does not match log head")
            if block.cosign is None:
                raise ValidationError("refusing to append a block without a collective signature")
        self._blocks.append(block)

    def committed_transactions(self):
        """Yield ``(height, transaction)`` for every transaction in committed blocks."""
        for block in self._blocks:
            if block.is_commit:
                for txn in block.transactions:
                    yield block.height, txn

    def copy(self) -> "TransactionLog":
        return TransactionLog(
            self._blocks, base_height=self._base_height, base_hash=self._base_hash
        )

    # -- verification ---------------------------------------------------------

    def verify(
        self, public_keys: Dict[str, PublicKey], checkpoint=None
    ) -> LogVerificationResult:
        """Verify hash chaining and every block's collective signature.

        This is the procedure the auditor runs on each collected log copy to
        decide whether it is correct (Lemma 6) before picking the longest
        correct copy (Lemma 7).  A checkpoint-truncated copy verifies only
        against its ``checkpoint``: the checkpoint's own co-sign must verify,
        its coverage must match the truncation boundary, and the retained
        suffix must chain onto its head hash.
        """
        if self._base_height > 0:
            if checkpoint is None:
                return LogVerificationResult(
                    False,
                    len(self._blocks),
                    0,
                    self._base_height,
                    "log is checkpoint-truncated but no checkpoint was presented",
                )
            if checkpoint.cosign is None or not cosi_verify(
                checkpoint.cosign, checkpoint.digest(), public_keys
            ):
                # Wording deliberately avoids "signature": the auditor's
                # forged-block classifier keys on that word to refine a
                # *block*-level co-sign failure, and this failure is about
                # the checkpoint artifact, not any retained block.
                return LogVerificationResult(
                    False,
                    len(self._blocks),
                    0,
                    self._base_height,
                    "checkpoint cosign failed verification",
                )
            if (
                checkpoint.height + 1 != self._base_height
                or checkpoint.head_hash != self._base_hash
            ):
                return LogVerificationResult(
                    False,
                    len(self._blocks),
                    0,
                    self._base_height,
                    "checkpoint does not cover this log's truncation boundary",
                )
        expected_prev = self._base_hash
        for index, block in enumerate(self._blocks):
            height = self._base_height + index
            if block.height != height:
                return LogVerificationResult(
                    False, len(self._blocks), index, height, "block height out of sequence"
                )
            if block.previous_hash != expected_prev:
                return LogVerificationResult(
                    False, len(self._blocks), index, height, "broken hash pointer"
                )
            reason = verify_block_cosign(block, public_keys)
            if reason:
                return LogVerificationResult(False, len(self._blocks), index, height, reason)
            expected_prev = block.block_hash()
        return LogVerificationResult(True, len(self._blocks), len(self._blocks))

    def is_prefix_of(self, other: "TransactionLog") -> bool:
        """True if this log's history is a (possibly equal) prefix of ``other``'s.

        Logs are compared by *global height*: every block both logs retain
        must be identical, and this log must not extend beyond ``other``.
        Heights only one side retains (checkpointed away on the other) are
        vouched for by that side's checkpoint and are not compared here.
        """
        if self.height > other.height:
            return False
        for block in self._blocks:
            theirs = other.block_at_height(block.height)
            if theirs is not None and theirs.block_hash() != block.block_hash():
                return False
        return True

    # -- tampering helpers (fault injection only) ------------------------------

    def tamper_replace(self, height: int, block: Block) -> None:
        """Replace the block at ``height`` without any checks (malicious)."""
        self._blocks[height] = block

    def tamper_reorder(self, height_a: int, height_b: int) -> None:
        """Swap two blocks in place (malicious reordering of history)."""
        self._blocks[height_a], self._blocks[height_b] = (
            self._blocks[height_b],
            self._blocks[height_a],
        )

    def truncate(self, keep: int) -> None:
        """Drop every block after the first ``keep`` blocks (tail omission)."""
        if keep < 0:
            raise ValidationError("cannot keep a negative number of blocks")
        del self._blocks[keep:]

    def drop_prefix(self, count: int) -> int:
        """Drop the first ``count`` retained blocks (checkpointing support).

        Unlike the tampering helpers this is an *honest* operation: it is only
        safe when the dropped prefix is covered by a collectively signed
        checkpoint (see :mod:`repro.ledger.checkpoint`).  The truncation
        boundary advances with the drop -- global heights, the head hash, and
        chaining of future appends are unaffected.  Returns the number of
        blocks removed.
        """
        if count < 0:
            raise ValidationError("cannot drop a negative number of blocks")
        count = min(count, len(self._blocks))
        if count:
            self._base_hash = self._blocks[count - 1].block_hash()
            self._base_height += count
            del self._blocks[:count]
        return count


def select_correct_log(
    logs: Dict[str, TransactionLog], public_keys: Dict[str, PublicKey]
) -> tuple:
    """Pick the correct and complete log out of the copies collected from all servers.

    Implements the auditor's first step (Section 3.3 / Lemma 7): verify every
    copy, keep the valid ones, and return the longest (ties broken by server
    id for determinism).  Returns ``(server_id, log, per_server_results)``.

    Raises
    ------
    ValidationError
        If no copy verifies -- which the failure model rules out (at least one
        server is correct), so hitting this means the audit inputs are bad.
    """
    results = {server: log.verify(public_keys) for server, log in logs.items()}
    valid = [(server, logs[server]) for server, result in results.items() if result.valid]
    if not valid:
        raise ValidationError("no correct log copy found among the collected logs")
    best_server, best_log = max(valid, key=lambda pair: (len(pair[1]), pair[0]))
    return best_server, best_log, results
