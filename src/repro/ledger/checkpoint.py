"""Log checkpointing: bounding the storage cost of the tamper-proof log.

Section 3.3 of the paper notes that "optimizations such as checkpointing can
be used to minimize the log storage space at each server".  This module
implements that optimisation in the spirit of Fides: a checkpoint must itself
be *auditable*, so it is a collectively signed summary of a log prefix rather
than a bare truncation.

A :class:`Checkpoint` captures, for a prefix of the log:

* the height and hash of the last block covered (so the remaining log chains
  onto the checkpoint exactly like it chained onto that block);
* the Merkle root of every shard as of that block (so per-version datastore
  audits can restart from the checkpoint instead of block 0);
* the largest commit timestamp covered (so timestamp-ordering checks keep
  working across the boundary); and
* a collective signature by all servers over all of the above.

``build_checkpoint`` / ``cosign_checkpoint`` create and sign a checkpoint,
``TransactionLog`` prefixes can then be dropped with
:func:`apply_checkpoint`, and the auditor-side :func:`verify_checkpoint`
checks the co-sign and the chaining of the remaining log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.crypto.cosi import CollectiveSignature, CoSiWitness, cosi_verify, run_cosi_round
from repro.crypto.hashing import hash_concat
from repro.crypto.keys import KeyPair, PublicKey
from repro.ledger.log import TransactionLog, verify_block_cosign


@dataclass(frozen=True)
class Checkpoint:
    """A collectively signed summary of a log prefix."""

    #: Height of the last block covered by this checkpoint.
    height: int
    #: ``block_hash()`` of that block; the first retained block must point at it.
    head_hash: bytes
    #: Merkle root of each shard as of the covered prefix (server id -> root).
    shard_roots: Mapping[str, bytes]
    #: Largest commit timestamp covered by the prefix.
    latest_commit_ts: Timestamp
    #: Number of transactions summarised (informational).
    transactions_covered: int
    #: Collective signature of all servers over the digest of the above.
    cosign: Optional[CollectiveSignature] = None

    def digest(self) -> bytes:
        """The byte string the servers collectively sign."""
        parts = [
            str(self.height).encode("ascii"),
            self.head_hash,
            str(self.transactions_covered).encode("ascii"),
            str(self.latest_commit_ts.counter).encode("ascii"),
            self.latest_commit_ts.client_id.encode("utf-8"),
        ]
        for server_id, root in sorted(self.shard_roots.items()):
            parts.append(server_id.encode("utf-8"))
            parts.append(root)
        return hash_concat(*parts)

    def with_cosign(self, cosign: CollectiveSignature) -> "Checkpoint":
        return Checkpoint(
            height=self.height,
            head_hash=self.head_hash,
            shard_roots=dict(self.shard_roots),
            latest_commit_ts=self.latest_commit_ts,
            transactions_covered=self.transactions_covered,
            cosign=cosign,
        )

    def to_wire(self):
        return {
            "height": self.height,
            "head_hash": self.head_hash,
            "shard_roots": {sid: root for sid, root in sorted(self.shard_roots.items())},
            "latest_commit_ts": self.latest_commit_ts.as_tuple(),
            "transactions_covered": self.transactions_covered,
            "cosign": self.cosign.to_wire() if self.cosign is not None else None,
        }


def build_checkpoint(
    log: TransactionLog,
    shard_roots: Mapping[str, bytes],
    previous: Optional[Checkpoint] = None,
) -> Checkpoint:
    """Summarise the full current contents of ``log`` into an (unsigned) checkpoint.

    ``shard_roots`` are the current Merkle roots of every shard (each server
    contributes its own root; the coordinator aggregates them, exactly like
    the vote phase of TFCommit aggregates per-shard roots into a block).

    For a log already truncated under an earlier checkpoint, pass it as
    ``previous`` so the transaction count and the commit-timestamp frontier
    accumulate across checkpoints instead of restarting at the truncation
    boundary.
    """
    if len(log) == 0:
        raise ValidationError("cannot checkpoint an empty log")
    if log.base_height > 0:
        if previous is None:
            raise ValidationError(
                "checkpointing an already-truncated log needs the previous checkpoint"
            )
        if previous.height + 1 != log.base_height or previous.head_hash != log.base_hash:
            raise ValidationError(
                "previous checkpoint does not cover this log's truncation boundary"
            )
    last_block = log.last_block()
    latest_ts = previous.latest_commit_ts if previous is not None else Timestamp.zero()
    transactions = previous.transactions_covered if previous is not None else 0
    for block in log:
        if block.is_commit:
            transactions += len(block.transactions)
            if block.max_commit_ts > latest_ts:
                latest_ts = block.max_commit_ts
    return Checkpoint(
        height=last_block.height,
        head_hash=last_block.block_hash(),
        shard_roots=dict(shard_roots),
        latest_commit_ts=latest_ts,
        transactions_covered=transactions,
    )


def cosign_checkpoint(checkpoint: Checkpoint, keypairs: Mapping[str, KeyPair]) -> Checkpoint:
    """Have every server co-sign the checkpoint (in-process CoSi round)."""
    witnesses = [CoSiWitness(server_id, kp) for server_id, kp in sorted(keypairs.items())]
    cosign = run_cosi_round(checkpoint.digest(), witnesses)
    return checkpoint.with_cosign(cosign)


def verify_checkpoint(checkpoint: Checkpoint, public_keys: Dict[str, PublicKey]) -> bool:
    """Verify the checkpoint's collective signature."""
    if checkpoint.cosign is None:
        return False
    return cosi_verify(checkpoint.cosign, checkpoint.digest(), public_keys)


def apply_checkpoint(log: TransactionLog, checkpoint: Checkpoint) -> int:
    """Drop every block covered by ``checkpoint`` from ``log``.

    Returns the number of blocks removed.  The retained suffix still chains
    correctly: its first block's ``previous_hash`` equals
    ``checkpoint.head_hash``.  Blocks are addressed by *global height*, so
    repeated checkpoints compose: applying a newer checkpoint to an
    already-truncated log drops exactly the newly covered blocks, and a
    checkpoint at or below the current truncation boundary is a no-op.
    """
    if checkpoint.cosign is None:
        raise ValidationError("refusing to apply an unsigned checkpoint")
    if checkpoint.height < log.base_height:
        return 0
    if checkpoint.height >= log.height:
        raise ValidationError("checkpoint covers blocks this log does not have")
    covered_block = log.block_at_height(checkpoint.height)
    if covered_block is None or covered_block.block_hash() != checkpoint.head_hash:
        raise ValidationError("checkpoint head hash does not match the local log")
    return log.drop_prefix(checkpoint.height + 1 - log.base_height)


def verify_log_against_checkpoint(
    log: TransactionLog,
    checkpoint: Checkpoint,
    public_keys: Dict[str, PublicKey],
) -> bool:
    """Auditor-side check of a checkpointed log copy.

    The checkpoint's co-sign must verify, the first retained block must chain
    onto the checkpoint's head hash, and the retained suffix must be
    internally consistent (hash pointers + per-block co-signs).
    """
    if not verify_checkpoint(checkpoint, public_keys):
        return False
    if len(log) == 0:
        return True
    first = log[0]
    if first.previous_hash != checkpoint.head_hash:
        return False
    if first.height != checkpoint.height + 1:
        return False
    expected_prev = first.previous_hash
    for index, block in enumerate(log):
        # Heights must stay sequential across the truncation boundary; the
        # hash pointer covers the height so a doctored height breaks the
        # chain anyway, but checking it directly gives a precise failure.
        if block.height != checkpoint.height + 1 + index:
            return False
        if block.previous_hash != expected_prev:
            return False
        if verify_block_cosign(block, public_keys):
            # Non-empty reason: missing/invalid co-sign, or a group block
            # whose signer set does not match its recorded group (the
            # chaining-vs-cosign split's defense, same as full-log verify).
            return False
        expected_prev = block.block_hash()
    return True
