"""Log checkpointing: bounding the storage cost of the tamper-proof log.

Section 3.3 of the paper notes that "optimizations such as checkpointing can
be used to minimize the log storage space at each server".  This module
implements that optimisation in the spirit of Fides: a checkpoint must itself
be *auditable*, so it is a collectively signed summary of a log prefix rather
than a bare truncation.

A :class:`Checkpoint` captures, for a prefix of the log:

* the height and hash of the last block covered (so the remaining log chains
  onto the checkpoint exactly like it chained onto that block);
* the Merkle root of every shard as of that block (so per-version datastore
  audits can restart from the checkpoint instead of block 0);
* the largest commit timestamp covered (so timestamp-ordering checks keep
  working across the boundary); and
* a collective signature by all servers over all of the above.

``build_checkpoint`` / ``cosign_checkpoint`` create and sign a checkpoint,
``TransactionLog`` prefixes can then be dropped with
:func:`apply_checkpoint`, and the auditor-side :func:`verify_checkpoint`
checks the co-sign and the chaining of the remaining log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.crypto.cosi import CollectiveSignature, CoSiWitness, cosi_verify, run_cosi_round
from repro.crypto.hashing import hash_concat
from repro.crypto.keys import KeyPair, PublicKey
from repro.ledger.log import TransactionLog


@dataclass(frozen=True)
class Checkpoint:
    """A collectively signed summary of a log prefix."""

    #: Height of the last block covered by this checkpoint.
    height: int
    #: ``block_hash()`` of that block; the first retained block must point at it.
    head_hash: bytes
    #: Merkle root of each shard as of the covered prefix (server id -> root).
    shard_roots: Mapping[str, bytes]
    #: Largest commit timestamp covered by the prefix.
    latest_commit_ts: Timestamp
    #: Number of transactions summarised (informational).
    transactions_covered: int
    #: Collective signature of all servers over the digest of the above.
    cosign: Optional[CollectiveSignature] = None

    def digest(self) -> bytes:
        """The byte string the servers collectively sign."""
        parts = [
            str(self.height).encode("ascii"),
            self.head_hash,
            str(self.transactions_covered).encode("ascii"),
            str(self.latest_commit_ts.counter).encode("ascii"),
            self.latest_commit_ts.client_id.encode("utf-8"),
        ]
        for server_id, root in sorted(self.shard_roots.items()):
            parts.append(server_id.encode("utf-8"))
            parts.append(root)
        return hash_concat(*parts)

    def with_cosign(self, cosign: CollectiveSignature) -> "Checkpoint":
        return Checkpoint(
            height=self.height,
            head_hash=self.head_hash,
            shard_roots=dict(self.shard_roots),
            latest_commit_ts=self.latest_commit_ts,
            transactions_covered=self.transactions_covered,
            cosign=cosign,
        )


def build_checkpoint(log: TransactionLog, shard_roots: Mapping[str, bytes]) -> Checkpoint:
    """Summarise the full current contents of ``log`` into an (unsigned) checkpoint.

    ``shard_roots`` are the current Merkle roots of every shard (each server
    contributes its own root; the coordinator aggregates them, exactly like
    the vote phase of TFCommit aggregates per-shard roots into a block).
    """
    if len(log) == 0:
        raise ValidationError("cannot checkpoint an empty log")
    last_block = log.last_block()
    latest_ts = Timestamp.zero()
    transactions = 0
    for block in log:
        if block.is_commit:
            transactions += len(block.transactions)
            if block.max_commit_ts > latest_ts:
                latest_ts = block.max_commit_ts
    return Checkpoint(
        height=last_block.height,
        head_hash=last_block.block_hash(),
        shard_roots=dict(shard_roots),
        latest_commit_ts=latest_ts,
        transactions_covered=transactions,
    )


def cosign_checkpoint(checkpoint: Checkpoint, keypairs: Mapping[str, KeyPair]) -> Checkpoint:
    """Have every server co-sign the checkpoint (in-process CoSi round)."""
    witnesses = [CoSiWitness(server_id, kp) for server_id, kp in sorted(keypairs.items())]
    cosign = run_cosi_round(checkpoint.digest(), witnesses)
    return checkpoint.with_cosign(cosign)


def verify_checkpoint(checkpoint: Checkpoint, public_keys: Dict[str, PublicKey]) -> bool:
    """Verify the checkpoint's collective signature."""
    if checkpoint.cosign is None:
        return False
    return cosi_verify(checkpoint.cosign, checkpoint.digest(), public_keys)


def apply_checkpoint(log: TransactionLog, checkpoint: Checkpoint) -> int:
    """Drop every block covered by ``checkpoint`` from ``log``.

    Returns the number of blocks removed.  The retained suffix still chains
    correctly: its first block's ``previous_hash`` equals
    ``checkpoint.head_hash``.
    """
    if checkpoint.cosign is None:
        raise ValidationError("refusing to apply an unsigned checkpoint")
    if checkpoint.height >= len(log):
        raise ValidationError("checkpoint covers blocks this log does not have")
    covered_block = log[checkpoint.height]
    if covered_block.block_hash() != checkpoint.head_hash:
        raise ValidationError("checkpoint head hash does not match the local log")
    return log.drop_prefix(checkpoint.height + 1)


def verify_log_against_checkpoint(
    log: TransactionLog,
    checkpoint: Checkpoint,
    public_keys: Dict[str, PublicKey],
) -> bool:
    """Auditor-side check of a checkpointed log copy.

    The checkpoint's co-sign must verify, the first retained block must chain
    onto the checkpoint's head hash, and the retained suffix must be
    internally consistent (hash pointers + per-block co-signs).
    """
    if not verify_checkpoint(checkpoint, public_keys):
        return False
    if len(log) == 0:
        return True
    first = log[0]
    if first.previous_hash != checkpoint.head_hash:
        return False
    if first.height != checkpoint.height + 1:
        return False
    expected_prev = first.previous_hash
    for block in log:
        if block.previous_hash != expected_prev:
            return False
        if block.cosign is None or not cosi_verify(
            block.cosign, block.signing_digest(), public_keys
        ):
            return False
        if block.group is not None and set(block.cosign.signer_ids) != set(block.group):
            # Same defense as TransactionLog.verify: a dynamic-group block
            # must be signed by exactly its recorded group, or a lone signer
            # could forge "group" blocks that still cosi-verify.
            return False
        expected_prev = block.block_hash()
    return True
