"""The tamper-proof, globally replicated transaction log.

Fides replaces traditional local transaction logs (ARIES-style) with a
globally replicated log of hash-chained, collectively signed blocks
(Sections 3.1, 4.1, 4.4).  Each block carries the fields of Table 1.
"""

from repro.ledger.block import Block, BlockDecision, block_body_digest
from repro.ledger.checkpoint import (
    Checkpoint,
    apply_checkpoint,
    build_checkpoint,
    cosign_checkpoint,
    verify_checkpoint,
    verify_log_against_checkpoint,
)
from repro.ledger.log import LogVerificationResult, TransactionLog

__all__ = [
    "Block",
    "BlockDecision",
    "Checkpoint",
    "LogVerificationResult",
    "TransactionLog",
    "apply_checkpoint",
    "block_body_digest",
    "build_checkpoint",
    "cosign_checkpoint",
    "verify_checkpoint",
    "verify_log_against_checkpoint",
]
