"""Epoch anchors: the thin chain that stitches per-shard order back together.

A sharded ordering service (:mod:`repro.core.sequencing`) finalizes
single-shard blocks independently per shard, so no single sequencer sees --
or vouches for -- the whole global log.  What restores the auditor's
global-log verification is a second, much thinner hash chain over *epochs*:
whenever the shards merge (a cross-shard block arrives, or the stream is
flushed), the service seals an :class:`EpochAnchor` recording, for every
ordering shard, how many blocks that shard has contributed and the head of
its per-shard hash chain, plus the global-height interval the epoch covers
and the hash of the previous anchor.

The per-shard chain folds each finalized block's *group body digest* -- the
exact digest the group co-signed -- so an anchor commits (transitively) to
every co-signed block body in its epoch without re-serialising any of them.
The auditor replays the reference log through the same fold
(:func:`replay_shard_chains`) and compares; a sequencer that reordered,
dropped, or invented blocks inside an epoch cannot produce a matching anchor
chain (collision-resistance of SHA-256), which is the trust argument of
DESIGN.md section 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.crypto.hashing import EMPTY_HASH, hash_concat
from repro.ledger.block import Block

#: Chain head of a shard that has not yet contributed any block.
GENESIS_SHARD_HEAD = EMPTY_HASH

#: Previous-anchor hash of the first anchor in a chain.
GENESIS_ANCHOR_HASH = EMPTY_HASH


def fold_shard_head(head: bytes, block: Block) -> bytes:
    """Extend one shard's chain head with one finalized block.

    The fold input is :meth:`Block.group_body_digest` -- chain-metadata-free
    and exactly what the group co-signed -- so the per-shard chain is
    invariant under the global re-chaining the sequencer performs at
    finalize time.
    """
    return hash_concat(b"shard-chain", head, block.group_body_digest())


@dataclass(frozen=True)
class EpochAnchor:
    """One sealed ordering epoch (DESIGN.md section 13).

    ``shard_heights[s]`` / ``shard_heads[s]`` are shard ``s``'s cumulative
    block count and chain head *at the end* of this epoch; ``start_height``
    (inclusive) and ``end_height`` (exclusive) bound the global heights the
    epoch covers.
    """

    epoch: int
    start_height: int
    end_height: int
    shard_heights: Tuple[int, ...]
    shard_heads: Tuple[bytes, ...]
    previous: bytes

    def __post_init__(self) -> None:
        object.__setattr__(self, "shard_heights", tuple(self.shard_heights))
        object.__setattr__(self, "shard_heads", tuple(self.shard_heads))
        if len(self.shard_heights) != len(self.shard_heads):
            raise ValidationError("anchor shard_heights and shard_heads lengths differ")
        if self.end_height < self.start_height:
            raise ValidationError("anchor covers a negative global-height range")

    @property
    def num_shards(self) -> int:
        return len(self.shard_heights)

    def anchor_hash(self) -> bytes:
        parts: List[bytes] = [
            b"epoch-anchor",
            str(self.epoch).encode("ascii"),
            str(self.start_height).encode("ascii"),
            str(self.end_height).encode("ascii"),
            self.previous,
        ]
        for height, head in zip(self.shard_heights, self.shard_heads):
            parts.append(str(height).encode("ascii"))
            parts.append(head)
        return hash_concat(*parts)

    def to_wire(self):
        return {
            "epoch": self.epoch,
            "start_height": self.start_height,
            "end_height": self.end_height,
            "shard_heights": list(self.shard_heights),
            "shard_heads": list(self.shard_heads),
            "previous": self.previous,
        }


def verify_anchor_chain(anchors: Sequence[EpochAnchor]) -> Optional[str]:
    """Check the anchors form one gapless hash chain; return a reason or None."""
    previous_hash = GENESIS_ANCHOR_HASH
    next_epoch = 0
    next_height = 0
    for anchor in anchors:
        if anchor.epoch != next_epoch:
            return f"anchor epoch {anchor.epoch} != expected {next_epoch}"
        if anchor.start_height != next_height:
            return (
                f"anchor {anchor.epoch} starts at height {anchor.start_height}, "
                f"expected {next_height}"
            )
        if anchor.previous != previous_hash:
            return f"anchor {anchor.epoch} does not extend the previous anchor"
        previous_hash = anchor.anchor_hash()
        next_epoch = anchor.epoch + 1
        next_height = anchor.end_height
    return None


def replay_shard_chains(
    blocks: Sequence[Block],
    shards_for_block: Callable[[Block], Sequence[int]],
    num_shards: int,
) -> Tuple[Tuple[int, ...], Tuple[bytes, ...]]:
    """Recompute every shard's (height, head) from a globally ordered prefix.

    ``shards_for_block`` maps a block to the ordering shards it involves --
    derived from the block's recorded group and the shard mapping, never from
    sequencer-provided metadata, so the replay is an independent check.
    """
    heights = [0] * num_shards
    heads = [GENESIS_SHARD_HEAD] * num_shards
    for block in blocks:
        for shard in shards_for_block(block):
            if not 0 <= shard < num_shards:
                raise ValidationError(f"block maps to unknown ordering shard {shard}")
            heights[shard] += 1
            heads[shard] = fold_shard_head(heads[shard], block)
    return tuple(heights), tuple(heads)
