"""Blocks of the tamper-proof log.

Each block stores exactly the fields of Table 1 of the paper:

=============  ==============================================================
``TxnId``      the commit timestamp(s) of the transaction(s) in the block
``R_set``      list of ``<id : value, rts, wts>`` read-set entries
``W_set``      list of ``<id : new_val, old_val, rts, wts>`` write-set entries
``sum roots``  the Merkle Hash Tree roots of the shards involved
``decision``   commit or abort
``h``          hash of the previous block
``co-sign``    a collective signature of the participants
=============  ==============================================================

A block can store multiple transactions (Section 4.6); the single-transaction
case used for exposition in the paper is simply a batch of size one.  The
collective signature covers the *body digest* -- every field except the
co-sign itself -- so any post-hoc modification of the block invalidates the
signature (Lemma 6).

Scaled deployments (Section 4.6, Figure 9) split block identity in two:

* the **group body** -- transactions, roots, decision, and the dynamic group
  that terminated them -- is what the group's members collectively sign
  (:meth:`Block.group_body_digest`);
* the **chain metadata** -- ``height`` and ``previous_hash`` -- is assigned
  later by the ordering service when it merges per-group blocks into the one
  global log, exactly as the paper's OrdServ "fills in the hash of the
  previous block".

A block produced by a dynamic group records the group in :attr:`Block.group`;
its :meth:`Block.signing_digest` is then the group body digest, so the
ordering service can re-chain the block without invalidating the co-sign,
while the hash pointers (:meth:`Block.block_hash`) still cover the full body
*including* the chain metadata, keeping the global log tamper-evident.
Classic single-coordinator blocks have ``group=None`` and sign the full body
digest as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Mapping, Optional, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.common.timestamps import Timestamp
from repro.common.types import ServerId
from repro.crypto.cosi import CollectiveSignature
from repro.crypto.hashing import EMPTY_HASH, hash_concat
from repro.txn.transaction import Transaction


class BlockDecision(Enum):
    """The commit/abort decision recorded in a block."""

    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class Block:
    """One entry of the tamper-proof log.

    ``roots`` maps each involved server to the Merkle root its shard would
    have with the block's transactions applied; for an aborted block at least
    one root is missing (Section 4.3.2).

    ``group`` is ``None`` for classic full-cluster blocks; for blocks
    terminated by a dynamic server group (Section 4.6) it records the group's
    members, and the collective signature covers the *group body digest*
    (which excludes the chain metadata the ordering service assigns later).

    ``view`` is the coordinator view the block was proposed in: 0 under the
    original coordinator, bumped by one per view change.  It is part of the
    signed body, so cohorts co-sign the view they voted in and a deposed
    coordinator cannot replay its old proposals into a newer view.
    """

    #: Blocks are immutable once built (tampering goes through
    #: ``dataclasses.replace``), so :func:`canonical_encode` may cache the
    #: wire encoding per instance -- see ``repro.common.encoding``.
    CANONICAL_CACHEABLE = True

    height: int
    transactions: Tuple[Transaction, ...]
    roots: Mapping[ServerId, bytes]
    decision: BlockDecision
    previous_hash: bytes
    cosign: Optional[CollectiveSignature] = None
    group: Optional[Tuple[ServerId, ...]] = None
    view: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "transactions", tuple(self.transactions))
        object.__setattr__(self, "roots", dict(self.roots))
        if self.group is not None:
            object.__setattr__(self, "group", tuple(sorted(self.group)))
        if self.height < 0:
            raise ValidationError("block height must be >= 0")
        if self.view < 0:
            raise ValidationError("block view must be >= 0")

    # -- Table 1 accessors ----------------------------------------------------

    @property
    def txn_ids(self) -> Tuple[str, ...]:
        """The ``TxnId`` field: commit timestamps (stringified) of the batched txns."""
        return tuple(str(txn.commit_ts) for txn in self.transactions)

    @property
    def commit_timestamps(self) -> Tuple[Timestamp, ...]:
        return tuple(txn.commit_ts for txn in self.transactions)

    @property
    def read_set(self):
        """The concatenated read sets of every transaction in the block."""
        return tuple(entry for txn in self.transactions for entry in txn.read_set)

    @property
    def write_set(self):
        """The concatenated write sets of every transaction in the block."""
        return tuple(entry for txn in self.transactions for entry in txn.write_set)

    @property
    def is_commit(self) -> bool:
        return self.decision is BlockDecision.COMMIT

    @property
    def max_commit_ts(self) -> Timestamp:
        """Largest commit timestamp in the block (used for log ordering checks)."""
        if not self.transactions:
            return Timestamp.zero()
        return max(txn.commit_ts for txn in self.transactions)

    def involved_servers(self) -> Tuple[ServerId, ...]:
        return tuple(sorted(self.roots))

    # -- hashing / signing ----------------------------------------------------

    def body(self) -> dict:
        """Every field except the co-sign, in canonical-encoding-friendly form."""
        return {
            "height": self.height,
            "transactions": [txn.to_wire() for txn in self.transactions],
            "roots": {server: root for server, root in sorted(self.roots.items())},
            "decision": self.decision.value,
            "previous_hash": self.previous_hash,
            "group": list(self.group) if self.group is not None else None,
            "view": self.view,
        }

    def body_digest(self) -> bytes:
        """The digest the participants collectively sign.

        Computed from the cached per-transaction encodings plus the block's
        own fields, and cached per block instance: every server hashes the
        block it received exactly once, no matter how many phases touch it.
        """
        cached = getattr(self, "_digest_cache", None)
        if cached is not None:
            return cached
        parts = [
            str(self.height).encode("ascii"),
            self.previous_hash,
        ]
        parts.extend(self._group_body_parts())
        digest = hash_concat(*parts)
        object.__setattr__(self, "_digest_cache", digest)
        return digest

    def _group_body_parts(self) -> list:
        """The chain-independent fields, in canonical order."""
        parts = [self.decision.value.encode("ascii"), str(self.view).encode("ascii")]
        for member in self.group or ():
            parts.append(b"group:" + member.encode("utf-8"))
        for server_id, root in sorted(self.roots.items()):
            parts.append(server_id.encode("utf-8"))
            parts.append(root)
        for txn in self.transactions:
            parts.append(txn.encoded())
        return parts

    def group_body_digest(self) -> bytes:
        """Digest of the chain-independent fields (Section 4.6).

        Excludes ``height`` and ``previous_hash``: in the scaled deployment
        those are assigned by the ordering service *after* the group co-signed
        the block, so the signature must not cover them.  It *does* cover the
        group membership, binding the signer set to the block.
        """
        cached = getattr(self, "_group_digest_cache", None)
        if cached is not None:
            return cached
        digest = hash_concat(b"group-body", *self._group_body_parts())
        object.__setattr__(self, "_group_digest_cache", digest)
        return digest

    def signing_digest(self) -> bytes:
        """The digest the participants collectively sign.

        Classic full-cluster blocks sign the full body digest (chain metadata
        included); dynamic-group blocks sign the group body digest so the
        ordering service can re-chain them without breaking the co-sign.
        """
        if self.group is not None:
            return self.group_body_digest()
        return self.body_digest()

    def round_key(self) -> tuple:
        """Stable identifier of the TFCommit round that produces this block.

        Cohorts key their per-round state by it.  Classic blocks are keyed by
        height (one round per log position); group blocks cannot be -- their
        height is a placeholder until the ordering service assigns the real
        one -- so they are keyed by the transactions they terminate.  The view
        is part of the key, so a successor coordinator re-proposing a stalled
        round in view ``v+1`` starts a *fresh* round rather than colliding
        with the deposed coordinator's armed round state.
        """
        if self.group is not None:
            return ("group", self.view) + tuple(
                sorted(txn.txn_id for txn in self.transactions)
            )
        return ("height", self.height, self.view)

    def block_hash(self) -> bytes:
        """Hash-pointer value used as the next block's ``previous_hash``.

        The pointer covers the body *and* the collective signature so that
        replacing a signature (even with another valid-looking one) breaks
        the chain.
        """
        cosign_bytes = self.cosign.encode() if self.cosign is not None else b""
        return hash_concat(self.body_digest(), cosign_bytes)

    # -- builders -------------------------------------------------------------

    def with_decision(self, decision: BlockDecision, roots: Mapping[ServerId, bytes]) -> "Block":
        """Return a copy with the decision and the aggregated MHT roots filled in."""
        return replace(self, decision=decision, roots=dict(roots))

    def with_cosign(self, cosign: CollectiveSignature) -> "Block":
        """Return the finalised block carrying the collective signature."""
        return replace(self, cosign=cosign)

    def to_wire(self):
        return {
            "body": self.body(),
            "cosign": self.cosign.to_wire() if self.cosign is not None else None,
        }


def make_partial_block(
    height: int,
    transactions: Sequence[Transaction],
    previous_hash: bytes,
    view: int = 0,
) -> Block:
    """The partially filled block the coordinator builds in TFCommit phase 1.

    Contains the commit timestamps, read/write sets, and the hash of the
    previous block; roots, decision, and co-sign are filled in later phases.
    """
    return Block(
        height=height,
        transactions=tuple(transactions),
        roots={},
        decision=BlockDecision.ABORT,
        previous_hash=previous_hash,
        view=view,
    )


def make_group_partial_block(
    transactions: Sequence[Transaction],
    group_members: Sequence[ServerId],
    view: int = 0,
) -> Block:
    """The partial block a *group* coordinator builds (Section 4.6).

    Chain metadata is a placeholder: the ordering service assigns the real
    height and previous-hash pointer when it merges the per-group streams,
    which is why the group co-signs :meth:`Block.group_body_digest` instead
    of the full body digest.
    """
    return Block(
        height=0,
        transactions=tuple(transactions),
        roots={},
        decision=BlockDecision.ABORT,
        previous_hash=EMPTY_HASH,
        group=tuple(sorted(group_members)),
        view=view,
    )


def genesis_previous_hash() -> bytes:
    """The ``previous_hash`` value of the first block in a log."""
    return EMPTY_HASH


def block_body_digest(block: Block) -> bytes:
    """Convenience wrapper (kept for a stable public API)."""
    return block.body_digest()
