"""The supported public surface of the reproduction (DESIGN.md §13).

Everything an external caller -- a notebook, a script, the examples under
``examples/`` -- needs lives behind this one module, so internal layout can
keep moving without breaking users:

- **Deployments**: :class:`FidesSystem` (classic single-coordinator
  TFCommit, plus the 2PC baseline via ``protocol="2pc"``) and
  :class:`ScaledFidesSystem` (dynamic groups over a pluggable ordering
  layer), both configured with :class:`SystemConfig`.
- **Sequencing**: the :class:`Sequencer` protocol and its two
  implementations -- the classic single-lane :class:`OrderingService` and
  the :class:`ShardedOrderingService` -- with the
  :func:`single_sequencer` / :func:`sharded_sequencer` factories that
  ``ScaledFidesSystem(sequencer=...)`` accepts, and
  :class:`OrderingShardMap` for key-range -> shard placement.
- **Experiments**: :func:`run` executes one :class:`ExperimentConfig`
  point, choosing the deployment from ``config.deployment`` -- the single
  entrypoint that replaced the per-deployment runner functions (which stay
  importable here for callers that want them explicitly).

Quickstart::

    from repro.api import ExperimentConfig, run

    result = run(ExperimentConfig(num_servers=5, num_requests=50))
    print(result.throughput)

Scale-out (paper §4.6 + the sharded sequencer)::

    from repro.api import ScaledFidesSystem, SystemConfig, sharded_sequencer

    system = ScaledFidesSystem(
        SystemConfig(num_servers=8, items_per_shard=100, txns_per_block=2),
        sequencer=sharded_sequencer(4),
    )
"""

from __future__ import annotations

from repro.audit.auditor import Auditor
from repro.audit.report import AuditReport
from repro.bench.experiments import run
from repro.bench.harness import (
    ExperimentConfig,
    run_experiment,
    run_scaled_from_config,
)
from repro.common.config import SystemConfig
from repro.core.fides import FidesSystem
from repro.core.ordserv import OrderedBlock, OrderingService
from repro.core.scaled import ScaledFidesSystem
from repro.core.sequencing import (
    OrderingShardMap,
    Sequencer,
    SequencerFactory,
    ShardedOrderingService,
    sharded_sequencer,
    single_sequencer,
)
from repro.ledger.anchor import EpochAnchor

__all__ = [
    "AuditReport",
    "Auditor",
    "EpochAnchor",
    "ExperimentConfig",
    "FidesSystem",
    "OrderedBlock",
    "OrderingService",
    "OrderingShardMap",
    "ScaledFidesSystem",
    "Sequencer",
    "SequencerFactory",
    "ShardedOrderingService",
    "SystemConfig",
    "run",
    "run_experiment",
    "run_scaled_from_config",
    "sharded_sequencer",
    "single_sequencer",
]
