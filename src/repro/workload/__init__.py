"""Workload generation: the Transactional-YCSB-like benchmark of Section 6.

The paper evaluates TFCommit with a YCSB-like multi-record workload: 1000
client requests, 5 read-write operations per transaction, keys picked at
random from the union of all partitions (producing distributed transactions),
and 100 non-conflicting transactions batched per block.
"""

from repro.workload.distributions import KeyDistribution, UniformKeys, ZipfianKeys
from repro.workload.ycsb import TransactionSpec, YcsbWorkload

__all__ = [
    "KeyDistribution",
    "TransactionSpec",
    "UniformKeys",
    "YcsbWorkload",
    "ZipfianKeys",
]
