"""Transactional-YCSB-like workload generator (Section 6).

The generator produces :class:`TransactionSpec` objects -- ordered lists of
read and write operations -- with the same shape as the paper's evaluation
workload: a configurable number of operations per transaction (5 in the
paper), keys drawn from the union of all partitions so that transactions are
distributed, and a configurable read/write mix (the paper uses read-write
transactions; we default to reading and then writing each picked item, which
produces the densest multi-record workload).

Because the paper batches *non-conflicting* transactions into blocks, the
generator can be asked to keep consecutive windows of transactions disjoint
in the items they touch (``conflict_free_window``); this is what the
benchmark harness uses so that a full batch always commits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.txn.operations import Operation, ReadOp, WriteOp
from repro.workload.distributions import KeyDistribution, UniformKeys, ZipfianKeys


@dataclass(frozen=True)
class TransactionSpec:
    """One generated transaction: an ordered list of operations."""

    txn_index: int
    operations: tuple

    def item_ids(self) -> List[str]:
        return sorted({op.item_id for op in self.operations})

    @property
    def num_operations(self) -> int:
        return len(self.operations)


@dataclass
class YcsbWorkload:
    """Generator of YCSB-like multi-record read/write transactions.

    Parameters
    ----------
    item_ids:
        The key universe (all items across all partitions).
    ops_per_txn:
        Operations per transaction; the paper uses 5 operations on distinct items.
    read_modify_write:
        If True (default, matching the paper's "read-write operations"), each
        picked item is read and then written, so a 5-item transaction has 5
        reads and 5 writes.  If False, ``write_fraction`` of the items are
        blind-written and the rest only read.
    write_fraction:
        Only used when ``read_modify_write`` is False.
    distribution:
        Key distribution; defaults to uniform over all items.
    conflict_free_window:
        If > 0, consecutive windows of this many transactions touch disjoint
        items, so batches of that size never conflict.
    seed:
        RNG seed for deterministic workloads.
    """

    item_ids: Sequence[str]
    ops_per_txn: int = 5
    read_modify_write: bool = True
    write_fraction: float = 0.5
    distribution: Optional[KeyDistribution] = None
    conflict_free_window: int = 0
    seed: int = 2020
    _value_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.ops_per_txn < 1:
            raise ConfigurationError("ops_per_txn must be >= 1")
        if not self.item_ids:
            raise ConfigurationError("workload needs a non-empty item universe")
        if self.distribution is None:
            self.distribution = UniformKeys(self.item_ids, seed=self.seed)
        window_items = self.conflict_free_window * self.ops_per_txn
        if window_items > len(self.item_ids):
            raise ConfigurationError(
                "conflict_free_window * ops_per_txn exceeds the item universe; "
                "reduce the window or add items"
            )

    # -- generation -------------------------------------------------------------

    def generate(self, num_transactions: int) -> List[TransactionSpec]:
        """Generate ``num_transactions`` transaction specs."""
        specs: List[TransactionSpec] = []
        used_in_window: set = set()
        for index in range(num_transactions):
            if self.conflict_free_window and index % self.conflict_free_window == 0:
                used_in_window = set()
            items = self._pick_items(used_in_window)
            if self.conflict_free_window:
                used_in_window.update(items)
            specs.append(TransactionSpec(txn_index=index, operations=tuple(self._ops_for(items))))
        return specs

    def _pick_items(self, excluded: set) -> List[str]:
        items: List[str] = []
        seen = set(excluded)
        attempts = 0
        max_attempts = 50 * self.ops_per_txn + 100
        while len(items) < self.ops_per_txn:
            candidate = self.distribution.sample()
            attempts += 1
            if candidate in seen:
                if attempts > max_attempts:
                    raise ConfigurationError(
                        "could not find enough non-conflicting items; "
                        "the item universe is too small for the requested window"
                    )
                continue
            seen.add(candidate)
            items.append(candidate)
        return items

    def _ops_for(self, items: Sequence[str]) -> List[Operation]:
        ops: List[Operation] = []
        for position, item_id in enumerate(items):
            if self.read_modify_write:
                ops.append(ReadOp(item_id))
                ops.append(WriteOp(item_id, self._next_value()))
            else:
                threshold = int(self.ops_per_txn * self.write_fraction)
                if position < threshold:
                    ops.append(WriteOp(item_id, self._next_value()))
                else:
                    ops.append(ReadOp(item_id))
        return ops

    def _next_value(self) -> int:
        self._value_counter += 1
        return self._value_counter


@dataclass
class PartitionedWorkload:
    """Locality-partitioned workload for the scaled deployment (Section 4.6).

    The item universe is split into *locality partitions* (each covering the
    shards of a few servers); every generated transaction has a home
    partition and, with probability ``locality``, touches only items of that
    partition -- so its dynamic group stays small and distinct partitions
    commit through distinct group coordinators.  The remaining
    ``1 - locality`` of transactions span the home partition and its
    neighbour, producing the overlapping groups whose blocks the ordering
    service must keep dependency-ordered.

    Parameters
    ----------
    partitions:
        Item ids per locality partition (e.g. one entry per pair of servers).
    ops_per_txn:
        Items touched per transaction; each is read then written.
    locality:
        Fraction of transactions confined to their home partition (1.0 means
        perfectly partitioned traffic, the paper's best case for scaling).
    conflict_free_window:
        Like :class:`YcsbWorkload`: consecutive windows of this many
        transactions *per partition* touch disjoint items, so per-group
        batches of that size never conflict.
    seed:
        RNG seed for deterministic workloads.
    home_skew_theta:
        Zipfian skew over *home partitions*: 0.0 (the default) keeps the
        historical round-robin assignment bit-for-bit; > 0 draws each
        transaction's home from a Zipfian over the partition indices, so a
        few partitions (and their group coordinators / ordering lanes)
        become hotspots -- what the scale-out sweep uses to stress the
        ordering layer unevenly.
    """

    partitions: Sequence[Sequence[str]]
    ops_per_txn: int = 2
    locality: float = 1.0
    conflict_free_window: int = 0
    seed: int = 2020
    home_skew_theta: float = 0.0
    _value_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self.partitions or any(not p for p in self.partitions):
            raise ConfigurationError("every locality partition needs items")
        if not 0.0 <= self.locality <= 1.0:
            raise ConfigurationError("locality must be within [0, 1]")
        if self.ops_per_txn < 1:
            raise ConfigurationError("ops_per_txn must be >= 1")
        if self.home_skew_theta < 0.0:
            raise ConfigurationError("home_skew_theta must be >= 0")
        self._rng = random.Random(self.seed)
        self._home_distribution = None
        if self.home_skew_theta > 0.0 and len(self.partitions) > 1:
            self._home_distribution = ZipfianKeys(
                list(range(len(self.partitions))),
                seed=self.seed + 1,
                theta=self.home_skew_theta,
            )
        #: Per-partition items already used in the current conflict-free window.
        self._window_used: Dict[int, set] = {i: set() for i in range(len(self.partitions))}
        self._window_progress: Dict[int, int] = {i: 0 for i in range(len(self.partitions))}

    def generate(self, num_transactions: int) -> List[TransactionSpec]:
        """Generate ``num_transactions`` specs.

        Homes are assigned round-robin, or Zipfian-skewed when
        ``home_skew_theta`` > 0.
        """
        specs: List[TransactionSpec] = []
        for index in range(num_transactions):
            if self._home_distribution is not None:
                home = self._home_distribution.sample()
            else:
                home = index % len(self.partitions)
            pools = [(home, list(self.partitions[home]))]
            if len(self.partitions) > 1 and self._rng.random() >= self.locality:
                neighbour = (home + 1) % len(self.partitions)
                pools.append((neighbour, list(self.partitions[neighbour])))
            items = self._pick_items(home, pools)
            operations = []
            for item_id in items:
                self._value_counter += 1
                operations.append(ReadOp(item_id))
                operations.append(WriteOp(item_id, self._value_counter))
            specs.append(TransactionSpec(txn_index=index, operations=tuple(operations)))
        return specs

    def _pick_items(self, home: int, pools: List) -> List[str]:
        if self.conflict_free_window:
            if self._window_progress[home] % self.conflict_free_window == 0:
                self._window_used[home] = set()
            self._window_progress[home] += 1
        items: List[str] = []
        # Spread the picks over every pool so cross-partition transactions
        # really touch both partitions (and hence widen their group).
        for position in range(self.ops_per_txn):
            partition_index, pool = pools[position % len(pools)]
            used = self._window_used[partition_index]
            candidates = [item for item in pool if item not in used and item not in items]
            if not candidates:
                raise ConfigurationError(
                    "locality partition exhausted; enlarge the partitions or "
                    "shrink conflict_free_window"
                )
            choice = self._rng.choice(candidates)
            items.append(choice)
            used.add(choice)
        return items
