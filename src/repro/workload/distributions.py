"""Key-choice distributions for workload generation.

YCSB workloads pick keys either uniformly or with a Zipfian skew; the paper's
evaluation picks data items "at random from a pool of all the data partitions
combined", i.e. uniformly, but the Zipfian generator is provided for
contention studies (and the ablation benchmarks).
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod
from typing import List, Sequence


class KeyDistribution(ABC):
    """Chooses item ids out of a fixed universe."""

    def __init__(self, item_ids: Sequence[str], seed: int = 2020) -> None:
        if not item_ids:
            raise ValueError("key distribution needs a non-empty item universe")
        self._item_ids = list(item_ids)
        self._rng = random.Random(seed)

    @property
    def universe_size(self) -> int:
        return len(self._item_ids)

    @abstractmethod
    def sample(self) -> str:
        """Return one item id."""

    def sample_distinct(self, count: int) -> List[str]:
        """Return ``count`` distinct item ids (rejection sampling)."""
        if count > len(self._item_ids):
            raise ValueError("cannot sample more distinct keys than exist")
        chosen: List[str] = []
        seen = set()
        while len(chosen) < count:
            item = self.sample()
            if item not in seen:
                seen.add(item)
                chosen.append(item)
        return chosen


class UniformKeys(KeyDistribution):
    """Every item is equally likely (the paper's setting)."""

    def sample(self) -> str:
        return self._rng.choice(self._item_ids)


class ZipfianKeys(KeyDistribution):
    """Zipfian-skewed choice: a few hot items absorb most accesses.

    ``theta`` is the usual YCSB skew parameter (0 = uniform, 0.99 = heavily
    skewed).  The cumulative distribution is precomputed once; sampling is a
    binary search.
    """

    def __init__(self, item_ids: Sequence[str], seed: int = 2020, theta: float = 0.99) -> None:
        super().__init__(item_ids, seed)
        if not 0.0 <= theta < 1.0 + 1e-9:
            raise ValueError("theta must be in [0, 1]")
        self._theta = theta
        weights = [1.0 / ((rank + 1) ** theta) for rank in range(len(self._item_ids))]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        self._cumulative = cumulative

    def sample(self) -> str:
        point = self._rng.random()
        index = bisect.bisect_left(self._cumulative, point)
        index = min(index, len(self._item_ids) - 1)
        return self._item_ids[index]
