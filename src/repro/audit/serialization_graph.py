"""Serialization graphs over logged transactions.

Lemma 3 states that verifying serializability "is equivalent to verifying
that no cycle exists in the Serialization Graph of the transactions being
audited."  The auditor builds that graph from the read/write sets recorded in
the log: there is an edge ``Ti -> Tj`` whenever ``Tj`` performed a
conflicting access (read-write, write-write, or write-read on the same item)
after ``Ti``, i.e. with a larger commit timestamp.  A committed history is
serializable iff the graph is acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.txn.transaction import Transaction


@dataclass
class SerializationGraph:
    """Directed conflict graph over a set of committed transactions."""

    _edges: Dict[str, Set[str]] = field(default_factory=dict)
    _transactions: Dict[str, Transaction] = field(default_factory=dict)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_transactions(cls, transactions: Sequence[Transaction]) -> "SerializationGraph":
        """Build the graph from a list of committed transactions.

        Edges run from the transaction with the smaller commit timestamp to
        the one with the larger timestamp whenever they conflict; a
        well-formed timestamp-ordered history therefore never has a cycle.
        Violations are detected by feeding the graph the *effective* order
        implied by the recorded read/write sets (see the auditor).
        """
        graph = cls()
        for txn in transactions:
            graph.add_transaction(txn)
        ordered = sorted(transactions, key=lambda t: t.commit_ts)
        for i, earlier in enumerate(ordered):
            for later in ordered[i + 1 :]:
                if cls._conflicts(earlier, later):
                    graph.add_edge(earlier.txn_id, later.txn_id)
        return graph

    @staticmethod
    def _conflicts(earlier: Transaction, later: Transaction) -> bool:
        e_reads, e_writes = earlier.items_read(), earlier.items_written()
        l_reads, l_writes = later.items_read(), later.items_written()
        return bool((e_writes & l_reads) or (e_writes & l_writes) or (e_reads & l_writes))

    def add_transaction(self, txn: Transaction) -> None:
        self._transactions[txn.txn_id] = txn
        self._edges.setdefault(txn.txn_id, set())

    def add_edge(self, from_txn: str, to_txn: str) -> None:
        self._edges.setdefault(from_txn, set()).add(to_txn)
        self._edges.setdefault(to_txn, set())

    # -- queries -------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._edges)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._edges.values())

    def successors(self, txn_id: str) -> Set[str]:
        return set(self._edges.get(txn_id, set()))

    def find_cycle(self) -> Optional[List[str]]:
        """Return one cycle (as a list of txn ids) or None if the graph is acyclic."""
        visiting: Set[str] = set()
        finished: Set[str] = set()
        path: List[str] = []

        def dfs(node: str) -> Optional[List[str]]:
            visiting.add(node)
            path.append(node)
            for child in sorted(self._edges.get(node, set())):
                if child in finished:
                    continue
                if child in visiting:
                    return path[path.index(child):] + [child]
                found = dfs(child)
                if found:
                    return found
            visiting.discard(node)
            finished.add(node)
            path.pop()
            return None

        for node in sorted(self._edges):
            if node in finished:
                continue
            cycle = dfs(node)
            if cycle:
                return cycle
        return None

    def is_serializable(self) -> bool:
        """True iff the conflict graph has no cycle."""
        return self.find_cycle() is None
