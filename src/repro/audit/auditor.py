"""The external auditor (Sections 3.3, 4.2.2, 4.3.2, 4.4, 4.5).

The auditor is a powerful external entity that, during each audit:

1. gathers the tamper-proof logs from all servers;
2. identifies the correct and complete log (at least one server is correct,
   so verifying hash pointers and collective signatures and picking the
   longest valid copy always succeeds -- Lemmas 6 and 7);
3. replays that log to detect incorrect reads (Lemma 1), isolation
   violations (Lemma 3), malformed or forked blocks (Lemma 5), and, by
   requesting Verification Objects from the servers, datastore corruption
   (Lemma 2).

Every detected anomaly is reported as a
:class:`~repro.audit.violations.Violation` carrying the block height (the
precise point in the transaction history) and the culprit server(s).

Note on the datastore check (Lemma 2): the auditor asks the audited server
for the item's value *as stored at the audited version* together with the
Verification Object, recomputes the Merkle root from that value and the VO,
and compares it against the co-signed root in the block; it additionally
cross-checks the stored value against the value recorded in the block's write
set.  A server whose datastore diverges from the co-signed state cannot pass
both checks (collision-free hash functions), which is the guarantee Lemma 2
states.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.audit.report import AuditReport
from repro.audit.serialization_graph import SerializationGraph
from repro.audit.violations import Violation, ViolationType
from repro.common.errors import AuditError
from repro.common.timestamps import Timestamp
from repro.crypto.keys import KeyPair, keypair_for
from repro.crypto.merkle import verify_inclusion
from repro.ledger.block import Block, BlockDecision
from repro.ledger.log import TransactionLog
from repro.net.message import MessageType
from repro.net.network import Network
from repro.storage.shard import ShardMap
from repro.txn.occ import classify_conflicts
from repro.txn.transaction import Transaction

#: Identity under which the auditor registers on the network.
AUDITOR_ID = "auditor"


class Auditor:
    """Offline auditor for a Fides deployment."""

    def __init__(
        self,
        network: Network,
        server_ids: Sequence[str],
        shard_map: ShardMap,
        keypair: Optional[KeyPair] = None,
    ) -> None:
        self.network = network
        self.server_ids = list(server_ids)
        self.shard_map = shard_map
        self.keypair = keypair or keypair_for(AUDITOR_ID)
        if AUDITOR_ID not in network.participants:
            network.register_observer(AUDITOR_ID, self.keypair)

    # -- log collection and selection (Lemmas 6 & 7) ---------------------------------

    def collect_logs(self) -> Dict[str, TransactionLog]:
        """Gather every server's log copy (and checkpoint, if any) over the network.

        Checkpoints ride along in ``self.collected_checkpoints``:
        a server whose log was truncated under Section 3.3's checkpointing
        optimisation presents the co-signed checkpoint in place of the
        dropped prefix, and :meth:`check_logs` verifies the pair together.
        """
        logs: Dict[str, TransactionLog] = {}
        self.collected_checkpoints: Dict[str, object] = {}
        for server_id in self.server_ids:
            response = self.network.send(
                AUDITOR_ID, server_id, MessageType.AUDIT_LOG_REQUEST, {"full": True}
            )
            logs[server_id] = response["log"]
            checkpoint = response.get("checkpoint")
            if checkpoint is not None:
                self.collected_checkpoints[server_id] = checkpoint
        return logs

    def check_logs(
        self,
        logs: Mapping[str, TransactionLog],
        report: AuditReport,
        checkpoints: Optional[Mapping[str, object]] = None,
    ) -> Optional[TransactionLog]:
        """Verify every copy, pick the reference log, and record log-level violations.

        Copies are compared by *effective* height -- a checkpoint-truncated
        copy vouches for its dropped prefix with the checkpoint's collective
        signature, so it competes on equal footing with full copies when the
        longest correct log is selected (Lemma 7 across the truncation
        boundary).
        """
        if checkpoints is None:
            checkpoints = getattr(self, "collected_checkpoints", {})
        public_keys = self.network.public_key_directory()
        results = {
            server_id: log.verify(public_keys, checkpoint=checkpoints.get(server_id))
            for server_id, log in logs.items()
        }
        report.log_results = dict(results)

        valid = {
            server_id: logs[server_id] for server_id, result in results.items() if result.valid
        }
        if not valid:
            raise AuditError(
                "no server produced a verifiable log copy; the failure model assumes at "
                "least one correct server"
            )
        reference_server = max(valid, key=lambda sid: (valid[sid].height, sid))
        reference = valid[reference_server]
        report.reference_log_server = reference_server
        report.reference_log_length = reference.height

        for server_id, result in results.items():
            if not result.valid:
                block_height = result.first_invalid_height
                kind = ViolationType.LOG_TAMPERED
                description = f"log copy failed verification: {result.reason}"
                mine = (
                    logs[server_id].block_at_height(block_height)
                    if block_height is not None
                    else None
                )
                ref_block = (
                    reference.block_at_height(block_height)
                    if block_height is not None
                    else None
                )
                comparable = (
                    mine is not None and ref_block is not None and "signature" in result.reason
                )
                # A block at the same height with a *different decision* than
                # the reference points at a forked commit/abort outcome
                # (coordinator equivocation, Lemma 5) rather than plain
                # after-the-fact tampering (Lemma 6).  A block whose *content*
                # matches the reference but whose signature still fails means
                # the signature itself was forged or replaced (Lemma 4).
                if comparable and mine.body_digest() == ref_block.body_digest():
                    kind = ViolationType.INVALID_COSIGN
                    description = (
                        "block content matches the reference log but its collective "
                        "signature does not verify (forged or replaced co-sign)"
                    )
                elif comparable and mine.decision is not ref_block.decision:
                    kind = ViolationType.ATOMICITY_VIOLATION
                    description = (
                        "log copy holds a block with a conflicting decision that is not "
                        "covered by a valid collective signature (possible coordinator "
                        "equivocation)"
                    )
                report.add(
                    Violation(
                        kind=kind,
                        description=description,
                        culprits=(server_id,),
                        block_height=block_height,
                    )
                )
            elif logs[server_id].height < reference.height:
                report.add(
                    Violation(
                        kind=ViolationType.LOG_INCOMPLETE,
                        description=(
                            f"log copy ends at height {logs[server_id].height}, reference at "
                            f"{reference.height} (missing tail)"
                        ),
                        culprits=(server_id,),
                        block_height=logs[server_id].height,
                    )
                )
            elif not logs[server_id].is_prefix_of(reference):
                report.add(
                    Violation(
                        kind=ViolationType.ATOMICITY_VIOLATION,
                        description="log copy diverges from the reference log",
                        culprits=(server_id,),
                    )
                )
        return reference

    # -- replay checks (Lemmas 1, 3, 5) --------------------------------------------------

    def check_transactions(self, reference: TransactionLog, report: AuditReport) -> None:
        """Replay the reference log and detect read/isolation/structure anomalies."""
        expected_values: Dict[str, object] = {}
        last_writer_ts: Dict[str, Timestamp] = {}
        committed: List[Transaction] = []

        for block in reference:
            report.blocks_audited += 1
            self._check_block_structure(block, report)
            if not block.is_commit:
                continue
            for txn in sorted(block.transactions, key=lambda t: t.commit_ts):
                report.transactions_audited += 1
                committed.append(txn)
                self._check_reads(txn, block, expected_values, last_writer_ts, report)
                self._check_timestamp_order(txn, block, report)
                for entry in txn.write_set:
                    expected_values[entry.item_id] = entry.new_value
                    last_writer_ts[entry.item_id] = txn.commit_ts

        graph = SerializationGraph.from_transactions(committed)
        cycle = graph.find_cycle()
        if cycle:
            report.add(
                Violation(
                    kind=ViolationType.ISOLATION_VIOLATION,
                    description=f"serialization graph contains a cycle: {' -> '.join(cycle)}",
                    culprits=(),
                )
            )

    def _check_block_structure(self, block: Block, report: AuditReport) -> None:
        """A commit block must carry a root from every involved server (Section 4.3.2)."""
        involved = set()
        for txn in block.transactions:
            involved.update(self.shard_map.servers_for(txn.items_accessed()))
        recorded = set(block.roots)
        if block.group is not None and not involved <= set(block.group):
            # A dynamic-group block (Section 4.6) must have been terminated by
            # a group covering every server its transactions touch; a smaller
            # group means uninvolved-in-signing servers were skipped for
            # validation and co-signing.
            outside = sorted(involved - set(block.group))
            report.add(
                Violation(
                    kind=ViolationType.MALFORMED_BLOCK,
                    description=(
                        f"group block's recorded group omits involved servers {outside}"
                    ),
                    # The omitted servers are the victims (their validation
                    # and co-sign were bypassed); the members who formed and
                    # signed the undersized group are the culprits.
                    culprits=tuple(block.group),
                    block_height=block.height,
                )
            )
        if block.decision is BlockDecision.COMMIT and not involved <= recorded:
            missing = sorted(involved - recorded)
            report.add(
                Violation(
                    kind=ViolationType.MALFORMED_BLOCK,
                    description=f"commit block is missing MHT roots from {missing}",
                    culprits=tuple(missing),
                    block_height=block.height,
                )
            )
        if block.decision is BlockDecision.ABORT and involved and involved <= recorded:
            report.add(
                Violation(
                    kind=ViolationType.MALFORMED_BLOCK,
                    description="abort block carries roots from every involved server",
                    culprits=(),
                    block_height=block.height,
                )
            )

    def _check_reads(
        self,
        txn: Transaction,
        block: Block,
        expected_values: Dict[str, object],
        last_writer_ts: Dict[str, Timestamp],
        report: AuditReport,
    ) -> None:
        """Lemma 1: every read must reflect the latest logged write of that item."""
        for entry in txn.read_set:
            if entry.item_id not in expected_values:
                continue
            if entry.value != expected_values[entry.item_id]:
                report.add(
                    Violation(
                        kind=ViolationType.INCORRECT_READ,
                        description=(
                            f"transaction {txn.txn_id} read {entry.value!r} for "
                            f"{entry.item_id} but the last committed write was "
                            f"{expected_values[entry.item_id]!r}"
                        ),
                        culprits=(self.shard_map.server_for(entry.item_id),),
                        block_height=block.height,
                        item_id=entry.item_id,
                        txn_id=txn.txn_id,
                    )
                )
            expected_wts = last_writer_ts.get(entry.item_id)
            if expected_wts is not None and entry.wts != expected_wts:
                report.add(
                    Violation(
                        kind=ViolationType.ISOLATION_VIOLATION,
                        description=(
                            f"transaction {txn.txn_id} read {entry.item_id} with write "
                            f"timestamp {entry.wts} but the latest committed write was at "
                            f"{expected_wts} (stale or fabricated timestamp)"
                        ),
                        culprits=(self.shard_map.server_for(entry.item_id),),
                        block_height=block.height,
                        item_id=entry.item_id,
                        txn_id=txn.txn_id,
                    )
                )

    def _check_timestamp_order(
        self, txn: Transaction, block: Block, report: AuditReport
    ) -> None:
        """Lemma 3: conflicting accesses must respect the commit-timestamp order."""
        for conflict in classify_conflicts(txn):
            report.add(
                Violation(
                    kind=ViolationType.ISOLATION_VIOLATION,
                    description=f"transaction {txn.txn_id}: {conflict.describe()}",
                    culprits=(self.shard_map.server_for(conflict.item_id),),
                    block_height=block.height,
                    item_id=conflict.item_id,
                    txn_id=txn.txn_id,
                )
            )

    # -- epoch-anchor verification (sharded ordering, DESIGN.md section 13) -----------------

    def check_epoch_anchors(
        self,
        reference: TransactionLog,
        anchors: Sequence,
        ordering_shard_map,
        report: AuditReport,
    ) -> None:
        """Replay the reference log's per-shard chains against the anchor chain.

        A sharded ordering service never sees the whole log through one
        sequencer; its epoch anchors are what vouch for the merge.  The
        auditor recomputes every ordering shard's hash chain from the
        *reference log's global order* and the shard mapping -- entirely
        independent of the sequencer's own bookkeeping -- and checks each
        anchor's per-shard heights/heads and the anchors' own hash chain.
        A sequencer that reordered, dropped, or invented blocks inside an
        epoch cannot produce a matching chain.
        """
        from repro.ledger.anchor import GENESIS_SHARD_HEAD, fold_shard_head, verify_anchor_chain

        reason = verify_anchor_chain(anchors)
        if reason is not None:
            report.add(
                Violation(
                    kind=ViolationType.ANCHOR_MISMATCH,
                    description=f"epoch-anchor chain is malformed: {reason}",
                    culprits=("ordserv",),
                )
            )
            return
        blocks = list(reference)
        num_shards = ordering_shard_map.num_shards
        heights = [0] * num_shards
        heads = [GENESIS_SHARD_HEAD] * num_shards
        replayed = 0
        for anchor in anchors:
            if anchor.end_height > len(blocks):
                report.add(
                    Violation(
                        kind=ViolationType.ANCHOR_MISMATCH,
                        description=(
                            f"anchor {anchor.epoch} covers heights up to "
                            f"{anchor.end_height} but the reference log ends at "
                            f"{len(blocks)}"
                        ),
                        culprits=("ordserv",),
                        block_height=len(blocks),
                    )
                )
                return
            while replayed < anchor.end_height:
                block = blocks[replayed]
                members = block.group if block.group is not None else ()
                for shard in ordering_shard_map.shards_of(members):
                    heights[shard] += 1
                    heads[shard] = fold_shard_head(heads[shard], block)
                replayed += 1
            if (
                tuple(heights) != anchor.shard_heights
                or tuple(heads) != anchor.shard_heads
            ):
                report.add(
                    Violation(
                        kind=ViolationType.ANCHOR_MISMATCH,
                        description=(
                            f"anchor {anchor.epoch} disagrees with the per-shard "
                            f"chains replayed from the reference log at height "
                            f"{anchor.end_height}"
                        ),
                        culprits=("ordserv",),
                        block_height=anchor.end_height,
                    )
                )
                return

    # -- datastore authentication (Lemma 2) -------------------------------------------------

    def check_datastores(
        self,
        reference: TransactionLog,
        report: AuditReport,
        mode: str = "latest",
    ) -> None:
        """Authenticate each server's datastore against the co-signed MHT roots.

        ``mode`` is ``"latest"`` (audit each server at the latest block where
        it recorded a root -- the single-versioned policy of Section 4.2.2) or
        ``"all"`` (exhaustively audit every commit block -- the multi-versioned
        policy, which also pinpoints the precise version at which corruption
        started).
        """
        if mode not in ("latest", "all"):
            raise AuditError(f"unknown datastore audit mode {mode!r}")
        per_server_blocks: Dict[str, List[Block]] = {}
        for block in reference:
            if not block.is_commit:
                continue
            for server_id in block.roots:
                per_server_blocks.setdefault(server_id, []).append(block)
        for server_id, blocks in per_server_blocks.items():
            targets = blocks if mode == "all" else [blocks[-1]]
            for block in targets:
                if block.group is not None and block is not blocks[-1]:
                    # Dynamic-group blocks (Section 4.6) carry speculative
                    # roots that are a function of *log order*, not of a
                    # commit-timestamp cutoff: per-group frontiers let commit
                    # timestamps interleave across groups, so a shard's
                    # intermediate state cannot be reconstructed by a
                    # timestamp-indexed version lookup.  Intermediate group
                    # blocks are covered by the hash chain + group co-sign;
                    # the datastore itself is authenticated at the shard's
                    # latest root, where log order and store state coincide.
                    continue
                live = block.group is not None
                self.audit_datastore_block(server_id, block, report, live=live)

    def audit_datastore_block(
        self, server_id: str, block: Block, report: AuditReport, live: bool = False
    ) -> bool:
        """Audit one server's shard at one block; returns True if it authenticated.

        ``live`` requests the server's *current* tree instead of the version
        at the block's commit timestamp -- used for dynamic-group blocks,
        whose state is indexed by log order rather than timestamps.
        """
        expected_root = block.roots.get(server_id)
        if expected_root is None:
            return True
        audited_ok = True
        audit_ts = block.max_commit_ts
        at = None if live else audit_ts.as_tuple()
        for txn in block.transactions:
            for entry in txn.write_set:
                if self.shard_map.server_for(entry.item_id) != server_id:
                    continue
                response = self.network.send(
                    AUDITOR_ID,
                    server_id,
                    MessageType.AUDIT_VO_REQUEST,
                    {"item_id": entry.item_id, "at": at},
                )
                if not response.get("ok"):
                    audited_ok = False
                    report.add(
                        Violation(
                            kind=ViolationType.DATASTORE_CORRUPTION,
                            description=(
                                f"server refused to produce a verification object for "
                                f"{entry.item_id}: {response.get('reason', 'unknown')}"
                            ),
                            culprits=(server_id,),
                            block_height=block.height,
                            item_id=entry.item_id,
                        )
                    )
                    continue
                stored_value = response["value"]
                proof_ok = verify_inclusion(
                    entry.item_id, stored_value, response["vo"], expected_root
                )
                if not proof_ok or stored_value != entry.new_value:
                    audited_ok = False
                    report.add(
                        Violation(
                            kind=ViolationType.DATASTORE_CORRUPTION,
                            description=(
                                f"datastore state for {entry.item_id} at version "
                                f"{audit_ts} does not authenticate against the co-signed "
                                f"MHT root (stored {stored_value!r}, logged "
                                f"{entry.new_value!r})"
                            ),
                            culprits=(server_id,),
                            block_height=block.height,
                            item_id=entry.item_id,
                            txn_id=txn.txn_id,
                        )
                    )
        return audited_ok

    def find_corruption_version(self, server_id: str, reference: TransactionLog) -> Optional[int]:
        """Exhaustive per-version audit: return the first block height whose state fails.

        Implements the multi-versioned policy of Lemma 2 ("the auditor
        identifies the precise version at which data corruption occurred by
        systematically authenticating all blocks in the log").
        """
        with_roots = [
            block
            for block in reference
            if block.is_commit and server_id in block.roots
        ]
        for block in with_roots:
            if block.group is not None and block is not with_roots[-1]:
                # Same rule as check_datastores: intermediate group blocks
                # cannot be audited by a timestamp-indexed version lookup
                # (per-group frontiers interleave commit timestamps relative
                # to log order).
                continue
            probe = AuditReport()
            live = block.group is not None
            if not self.audit_datastore_block(server_id, block, probe, live=live):
                return block.height
        return None

    # -- the full audit -----------------------------------------------------------------------

    def run_audit(
        self,
        servers=None,
        logs: Optional[Mapping[str, TransactionLog]] = None,
        check_datastore: bool = True,
        datastore_mode: str = "latest",
        epoch_anchors: Optional[Sequence] = None,
        ordering_shard_map=None,
    ) -> AuditReport:
        """Run a complete offline audit and return the report.

        ``servers`` is accepted (and ignored beyond convenience) so callers
        holding a :class:`~repro.core.fides.FidesSystem` can simply pass its
        server map; logs and verification objects are always fetched over the
        network so the audit exercises the same signed message paths a real
        external auditor would.  ``epoch_anchors`` + ``ordering_shard_map``
        (sharded ordering deployments) additionally run
        :meth:`check_epoch_anchors` against the reference log.
        """
        started = time.perf_counter()
        report = AuditReport()
        if logs is not None:
            collected = dict(logs)
            # Caller-supplied logs come without checkpoints; do not let a
            # previous collection's checkpoints leak into this audit.
            self.collected_checkpoints = {}
        else:
            collected = self.collect_logs()
        reference = self.check_logs(collected, report)
        if reference is None:
            report.audit_wall_time_s = time.perf_counter() - started
            return report
        self.check_transactions(reference, report)
        if epoch_anchors is not None and ordering_shard_map is not None:
            self.check_epoch_anchors(reference, epoch_anchors, ordering_shard_map, report)
        if check_datastore:
            self.check_datastores(reference, report, mode=datastore_mode)
        report.audit_wall_time_s = time.perf_counter() - started
        return report
