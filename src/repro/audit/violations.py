"""Violation types the auditor can report.

Each violation maps to one of the paper's lemmas / failure scenarios and
carries enough context to satisfy the paper's two detection goals
(Section 3.3): the precise point in the transaction history where the anomaly
occurred (``block_height``) and the misbehaving server(s) it is linked to
(``culprits``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class ViolationType(Enum):
    """Classes of detectable misbehaviour."""

    #: A log copy contains a modified or reordered block (Lemma 6).
    LOG_TAMPERED = "log-tampered"
    #: A log copy is missing tail blocks (Lemma 7).
    LOG_INCOMPLETE = "log-incomplete"
    #: A read returned a value inconsistent with the preceding write (Lemma 1).
    INCORRECT_READ = "incorrect-read"
    #: A committed transaction violates timestamp-order serializability (Lemma 3).
    ISOLATION_VIOLATION = "isolation-violation"
    #: The datastore state does not authenticate against the logged MHT root (Lemma 2).
    DATASTORE_CORRUPTION = "datastore-corruption"
    #: Different servers hold conflicting decisions / forked blocks (Lemma 5).
    ATOMICITY_VIOLATION = "atomicity-violation"
    #: A block carries a collective signature that does not verify (Lemma 4).
    INVALID_COSIGN = "invalid-cosign"
    #: A commit block is missing an involved server's root, or an abort block has all roots.
    MALFORMED_BLOCK = "malformed-block"
    #: The sharded sequencer's epoch-anchor chain does not match the per-shard
    #: chains replayed from the reference log (DESIGN.md section 13).
    ANCHOR_MISMATCH = "epoch-anchor-mismatch"


@dataclass(frozen=True)
class Violation:
    """One detected anomaly."""

    kind: ViolationType
    description: str
    culprits: Tuple[str, ...] = field(default_factory=tuple)
    block_height: Optional[int] = None
    item_id: Optional[str] = None
    txn_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "culprits", tuple(self.culprits))

    def involves(self, server_id: str) -> bool:
        return server_id in self.culprits

    def summary(self) -> str:
        where = f" at block {self.block_height}" if self.block_height is not None else ""
        who = f" (culprits: {', '.join(self.culprits)})" if self.culprits else ""
        return f"[{self.kind.value}]{where} {self.description}{who}"
