"""Audit reports.

The output of a full audit: which log copy was chosen as correct and
complete, how each server's copy verified, and every violation detected,
classified per the lemmas of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.audit.violations import Violation, ViolationType
from repro.ledger.log import LogVerificationResult


@dataclass
class AuditReport:
    """The result of one offline audit."""

    #: Server whose log copy was selected as correct and complete (Lemma 7).
    reference_log_server: Optional[str] = None
    #: Length of the selected reference log.
    reference_log_length: int = 0
    #: Per-server log verification outcomes (Lemma 6).
    log_results: Dict[str, LogVerificationResult] = field(default_factory=dict)
    #: Every violation detected, in detection order.
    violations: List[Violation] = field(default_factory=list)
    #: Number of blocks / transactions examined (for reporting).
    blocks_audited: int = 0
    transactions_audited: int = 0
    #: Wall-clock seconds the full audit took (stamped by ``run_audit``); the
    #: fault-campaign engine compares it against an honest-run baseline to
    #: report audit overhead.
    audit_wall_time_s: float = 0.0

    # -- convenience ------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True iff the audit found no violations of any kind."""
        return not self.violations

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def violations_of(self, kind: ViolationType) -> List[Violation]:
        return [violation for violation in self.violations if violation.kind is kind]

    def culprit_servers(self) -> Tuple[str, ...]:
        """Every server implicated by at least one violation."""
        culprits = sorted({server for violation in self.violations for server in violation.culprits})
        return tuple(culprits)

    def first_violation_height(self) -> Optional[int]:
        """The earliest block height at which any violation occurred.

        The paper notes that once the first violation is found, everything
        after it "can be incorrect and hence irrelevant to a correct
        execution" (Theorem 1); this accessor gives that cut-off point.
        """
        heights = [v.block_height for v in self.violations if v.block_height is not None]
        return min(heights) if heights else None

    def detection_latency_blocks(self, from_height: Optional[int] = None) -> Optional[int]:
        """How many blocks were appended after an anomaly before the
        (offline, end-of-run) audit caught it.

        This is the campaign engine's "blocks-until-detection" metric: the
        distance between the violating block (``from_height``, defaulting to
        the earliest violation of any kind) and the head of the reference
        log.  ``None`` when there is no anomaly, ``0`` when it sits in the
        newest block.
        """
        first = self.first_violation_height() if from_height is None else from_height
        if first is None:
            return None
        return max(0, self.reference_log_length - 1 - first)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            "Fides audit report",
            "==================",
            f"reference log: {self.reference_log_server!r} ({self.reference_log_length} blocks)",
            f"blocks audited: {self.blocks_audited}, transactions audited: {self.transactions_audited}",
            f"violations: {len(self.violations)}",
        ]
        for violation in self.violations:
            lines.append(f"  - {violation.summary()}")
        if self.ok:
            lines.append("  (no violations detected: servers upheld verifiable ACID)")
        return "\n".join(lines)
