"""Auditing: offline detection of malicious failures (Sections 3.3, 4.5, 5).

Fides is a fault-*detection* system: any failure -- incorrect reads,
corrupted datastores, isolation violations, atomicity violations, tampered or
truncated logs -- is detected during an offline audit, together with the
precise point in the transaction history where it occurred and the
misbehaving server it is irrefutably linked to.
"""

from repro.audit.violations import Violation, ViolationType
from repro.audit.report import AuditReport
from repro.audit.serialization_graph import SerializationGraph
from repro.audit.auditor import Auditor

__all__ = ["AuditReport", "Auditor", "SerializationGraph", "Violation", "ViolationType"]
