"""Network substrate: signed message envelopes and an in-process message bus.

All message exchanges in Fides (client-server or server-server) are digitally
signed by the sender and verified by the receiver (Section 3.1).  The
:class:`~repro.net.network.Network` implements that contract over an
in-process bus with a configurable latency model used by the benchmark
harness's simulated-time accounting (see DESIGN.md substitution table).
"""

from repro.net.message import Envelope, MessageType
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    UniformLatency,
    lan_latency,
    wan_latency,
)
from repro.net.network import Network, NetworkStats

__all__ = [
    "ConstantLatency",
    "Envelope",
    "LatencyModel",
    "MessageType",
    "Network",
    "NetworkStats",
    "UniformLatency",
    "lan_latency",
    "wan_latency",
]
