"""Message types and signed envelopes.

Every protocol message is wrapped in an :class:`Envelope`: sender, recipient,
type, payload, and the sender's signature over the canonical encoding of all
of it.  Receivers verify the signature before processing (Section 3.1); an
envelope that fails verification is rejected with
:class:`~repro.common.errors.SignatureError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional


class MessageType(Enum):
    """All *request* message kinds exchanged in Fides.

    The names follow the transaction life-cycle of Figure 5 and the TFCommit
    phases of Figure 7.  The network is synchronous-RPC
    (:meth:`~repro.net.network.Network.send` returns the handler's result),
    so replies -- votes, read results, state and audit responses -- travel as
    handler *return payloads* and have no enveloped type of their own.  The
    message-flow analyzer (``python -m repro.check.static``) enforces this:
    every member must be sent somewhere and dispatched in
    ``Server.handle``.
    """

    # Transaction execution (client <-> server), Figure 6.
    BEGIN_TRANSACTION = "begin_transaction"
    READ = "read"
    WRITE = "write"
    END_TRANSACTION = "end_transaction"

    # TFCommit phases (coordinator <-> cohorts), Figure 7.  The cohort's
    # <TxnVote, SchCommit> and <null, SchResponse> halves are the returns of
    # GET_VOTE and CHALLENGE respectively.
    GET_VOTE = "get_vote"
    CHALLENGE = "challenge"
    DECISION = "decision"
    #: A round that failed (refusals, bad co-sign) is abandoned explicitly so
    #: cohorts release the per-round state they buffered for it.
    ROUND_FAILED = "round_failed"

    # Scaled deployment (Section 4.6): the ordering service's atomic broadcast
    # of globally chained per-group blocks.
    ORDERED_BLOCK = "ordered_block"
    #: Sharded ordering (DESIGN.md §13): one sealed epoch anchor binding the
    #: per-shard hash chains to a global-height interval.
    EPOCH_ANCHOR = "epoch_anchor"

    # Coordinator failover (view change): the successor solicits each
    # surviving cohort's commit frontier + stalled rounds, then announces the
    # new view so cohorts stop accepting the deposed coordinator's proposals.
    VIEW_CHANGE = "view_change"
    NEW_VIEW = "new_view"

    # 2PC baseline phases (the prepare vote is PREPARE's return payload).
    PREPARE = "prepare"
    COMMIT_DECISION = "commit_decision"

    # Crash recovery: a restarted server fetches its missing block range from
    # (untrusted) peers and verifies it before applying.
    STATE_REQUEST = "state_request"

    # Audit traffic (auditor <-> servers).
    AUDIT_LOG_REQUEST = "audit_log_request"
    AUDIT_VO_REQUEST = "audit_vo_request"


@dataclass(frozen=True)
class Envelope:
    """A signed protocol message.

    ``signature`` covers the canonical encoding of
    ``(sender, recipient, message_type, payload)`` under the sender's key; it
    is ``None`` only transiently while the envelope is being built.
    """

    sender: str
    recipient: str
    message_type: MessageType
    payload: Any
    signature: Optional[bytes] = None

    def signed_content(self):
        """The portion of the envelope covered by the signature."""
        return {
            "sender": self.sender,
            "recipient": self.recipient,
            "type": self.message_type.value,
            "payload": self.payload,
        }

    def with_signature(self, signature: bytes) -> "Envelope":
        return Envelope(
            sender=self.sender,
            recipient=self.recipient,
            message_type=self.message_type,
            payload=self.payload,
            signature=signature,
        )

    def to_wire(self):
        return {"content": self.signed_content(), "signature": self.signature}
