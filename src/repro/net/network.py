"""The in-process message bus connecting clients, servers, and the auditor.

The :class:`Network` plays the role of the datacenter network in the paper's
deployment.  It:

* looks up the recipient's registered handler and delivers the envelope;
* signs every outgoing envelope with the sender's key and verifies every
  incoming envelope with the sender's public key (Section 3.1) -- unless the
  sender deliberately sends an unsigned/forged envelope, which receivers then
  reject;
* keeps per-message-type traffic statistics and accumulates the simulated
  network delay each message would have cost on the configured
  :class:`~repro.net.latency.LatencyModel` (the benchmark harness reads these
  to cost out protocol rounds).

Delivery is synchronous: ``send`` returns the recipient handler's response
payload, which keeps the protocol implementations easy to read while the
latency model keeps the timing realistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.check.choices import choose_order
from repro.common.encoding import canonical_encode
from repro.common.errors import ConfigurationError, SignatureError, UnreachableError
from repro.crypto.keys import KeyPair, PublicKey
from repro.crypto.signing import SigningScheme, make_signing_scheme
from repro.net.latency import LatencyModel, lan_latency
from repro.net.message import Envelope, MessageType
from repro.obs.timing import Stopwatch

#: A message handler: receives the verified envelope, returns a response payload.
Handler = Callable[[Envelope], Any]


@dataclass
class NetworkStats:
    """Counters the benchmark harness and tests read back.

    ``per_node`` counts messages *delivered to* each participant; it survives
    a participant crashing and re-registering (the stats object belongs to
    the network, not to the handler), so restart-heavy runs keep an accurate
    per-node traffic picture.
    """

    messages_sent: int = 0
    messages_rejected: int = 0
    messages_undeliverable: int = 0
    simulated_delay: float = 0.0
    per_type: Dict[str, int] = field(default_factory=dict)
    per_node: Dict[str, int] = field(default_factory=dict)
    #: Wire bytes (canonical-encoded signed content), total and per type --
    #: the size every message *would* occupy on a real transport.
    bytes_total: int = 0
    bytes_per_type: Dict[str, int] = field(default_factory=dict)

    def record(
        self, message_type: MessageType, recipient: str, delay: float, size: int = 0
    ) -> None:
        self.messages_sent += 1
        self.simulated_delay += delay
        self.per_type[message_type.value] = self.per_type.get(message_type.value, 0) + 1
        self.per_node[recipient] = self.per_node.get(recipient, 0) + 1
        self.bytes_total += size
        self.bytes_per_type[message_type.value] = (
            self.bytes_per_type.get(message_type.value, 0) + size
        )


class Network:
    """Signed, synchronous, in-process message delivery between participants."""

    def __init__(
        self,
        signing_scheme: Optional[SigningScheme] = None,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        self._scheme = signing_scheme or make_signing_scheme("schnorr")
        self._latency = latency or lan_latency()
        #: Optional simulation context: when attached, every delivered
        #: message is also recorded as an event on the virtual timeline at
        #: the clock's current activity time (see repro.sim).
        self._sim = None
        self._handlers: Dict[str, Handler] = {}
        self._keypairs: Dict[str, KeyPair] = {}
        self._public_keys: Dict[str, PublicKey] = {}
        #: Participants that registered a handler once but are currently down
        #: (crashed servers awaiting recovery).  Their keys stay in the
        #: directory -- co-signs involving them must keep verifying -- but
        #: delivery raises :class:`UnreachableError` until they re-register.
        self._departed: set = set()
        self.stats = NetworkStats()

    def attach_sim(self, sim) -> None:
        """Record delivered messages on a simulation context's timeline."""
        self._sim = sim

    # -- membership -----------------------------------------------------------

    def register(
        self, identity: str, keypair: KeyPair, handler: Handler, replace: bool = False
    ) -> None:
        """Register a participant: its key pair and its message handler.

        A participant id can only be taken once; a *restarting* server rejoins
        with ``replace=True``, which requires the same key pair it registered
        with originally (a rejoin must not be able to swap identities) and
        preserves the per-node traffic stats accumulated before the crash.
        """
        if identity in self._handlers and not replace:
            raise ConfigurationError(
                f"participant {identity!r} is already registered; "
                "rejoin with replace=True"
            )
        existing = self._public_keys.get(identity)
        if existing is not None and existing.encode() != keypair.public.encode():
            raise ConfigurationError(
                f"participant {identity!r} attempted to re-register with a different key"
            )
        self._handlers[identity] = handler
        self._keypairs[identity] = keypair
        self._public_keys[identity] = keypair.public
        self._departed.discard(identity)

    def unregister(self, identity: str) -> None:
        """Take a participant's handler off the network (crash / shutdown).

        The identity's keys remain in the public-key directory so historical
        signatures keep verifying; subsequent sends to it raise
        :class:`UnreachableError` until it re-registers.
        """
        if self._handlers.pop(identity, None) is not None:
            self._departed.add(identity)

    def is_reachable(self, identity: str) -> bool:
        return identity in self._handlers

    def register_observer(self, identity: str, keypair: KeyPair) -> None:
        """Register a participant that only sends (e.g. a client or the auditor)."""
        self._keypairs[identity] = keypair
        self._public_keys[identity] = keypair.public

    def public_key_of(self, identity: str) -> PublicKey:
        try:
            return self._public_keys[identity]
        except KeyError:
            raise ConfigurationError(f"unknown participant {identity!r}") from None

    def public_key_directory(self) -> Dict[str, PublicKey]:
        """The system-wide directory of public keys (Section 3.1)."""
        return dict(self._public_keys)

    @property
    def participants(self):
        return sorted(self._public_keys)

    @property
    def signing_scheme(self) -> SigningScheme:
        return self._scheme

    @property
    def latency_model(self) -> LatencyModel:
        return self._latency

    # -- delivery -------------------------------------------------------------

    def sign_envelope(self, envelope: Envelope) -> Envelope:
        """Sign an envelope with the sender's registered key."""
        keypair = self._keypairs.get(envelope.sender)
        if keypair is None:
            raise ConfigurationError(f"sender {envelope.sender!r} has no registered key")
        signature = self._scheme.sign(keypair, envelope.signed_content())
        return envelope.with_signature(signature)

    def verify_envelope(self, envelope: Envelope) -> bool:
        """Verify an envelope's signature against the sender's public key."""
        if envelope.signature is None:
            return False
        public = self._public_keys.get(envelope.sender)
        if public is None:
            return False
        return self._scheme.verify(public, envelope.signed_content(), envelope.signature)

    def send(
        self,
        sender: str,
        recipient: str,
        message_type: MessageType,
        payload: Any,
        presigned: Optional[Envelope] = None,
    ) -> Any:
        """Deliver one signed message and return the recipient's response payload.

        ``presigned`` lets fault injection pass an envelope whose signature was
        produced over different content (forgery attempt); the receiver-side
        verification then rejects it.

        The signed content is canonically encoded exactly once here: the
        same bytes feed the sender-side signature, the receiver-side
        verification, and the wire-size accounting.
        """
        obs = self._sim.obs if self._sim is not None else None
        if presigned is not None:
            envelope = presigned
            encoded = canonical_encode(envelope.signed_content())
        else:
            keypair = self._keypairs.get(sender)
            if keypair is None:
                raise ConfigurationError(f"sender {sender!r} has no registered key")
            envelope = Envelope(
                sender=sender, recipient=recipient, message_type=message_type, payload=payload
            )
            encoded = canonical_encode(envelope.signed_content())
            watch = Stopwatch()
            envelope = envelope.with_signature(self._scheme.sign_bytes(keypair, encoded))
            if obs is not None:
                obs.metrics.counter("crypto.envelope_sign.ops")
                obs.metrics.counter("crypto.envelope_sign.s", watch.elapsed())
        handler = self._handlers.get(recipient)
        if handler is None:
            if recipient in self._departed:
                self.stats.messages_undeliverable += 1
                raise UnreachableError(f"participant {recipient!r} is down (crashed)")
            raise ConfigurationError(f"recipient {recipient!r} has no registered handler")
        public = self._public_keys.get(envelope.sender)
        watch = Stopwatch()
        verified = (
            envelope.signature is not None
            and public is not None
            and self._scheme.verify_bytes(public, encoded, envelope.signature)
        )
        if obs is not None:
            obs.metrics.counter("crypto.envelope_verify.ops")
            obs.metrics.counter("crypto.envelope_verify.s", watch.elapsed())
        if not verified:
            self.stats.messages_rejected += 1
            raise SignatureError(
                f"envelope from {envelope.sender!r} to {recipient!r} failed signature verification"
            )
        self.stats.record(message_type, recipient, self._latency.sample(), size=len(encoded))
        if obs is not None:
            obs.metrics.counter("net.messages")
            obs.metrics.counter("net.bytes_total", len(encoded))
            obs.metrics.counter(f"net.bytes.{message_type.value}", len(encoded))
        if self._sim is not None:
            self._sim.loop.schedule(
                self._sim.clock.now,
                "message",
                resource=recipient,
                label=message_type.value,
                detail={"sender": sender},
            )
        return handler(envelope)

    def broadcast(
        self,
        sender: str,
        recipients,
        message_type: MessageType,
        payload: Any,
        skip_unreachable: bool = False,
    ) -> Dict[str, Any]:
        """Send the same payload to several recipients; returns responses by id.

        ``skip_unreachable=True`` silently drops recipients that are down --
        used for best-effort notifications (e.g. ``ROUND_FAILED``, whose very
        cause may be a crashed cohort).

        A real network gives no ordering guarantee across recipients, so
        under the model checker the delivery order is a branch point.
        """
        responses: Dict[str, Any] = {}
        for recipient in choose_order(
            f"net/broadcast/{message_type.value}", list(recipients), feature="net-order"
        ):
            try:
                responses[recipient] = self.send(sender, recipient, message_type, payload)
            except UnreachableError:
                if not skip_unreachable:
                    raise
        return responses
