"""Network latency models for simulated-time accounting.

The paper's evaluation runs on EC2 VMs inside one AWS region; we replace the
physical network with latency models (see DESIGN.md).  A latency model
answers one question -- "how long does one message take?" -- and the
benchmark harness combines those one-way delays with measured per-server
compute to cost out a protocol round.

Models are deterministic given their RNG seed so experiment runs are
reproducible.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass


class LatencyModel(ABC):
    """Produces one-way message delays, in seconds."""

    @abstractmethod
    def sample(self) -> float:
        """Return one one-way message delay in seconds."""

    def round_trip(self) -> float:
        """One request/response round trip."""
        return self.sample() + self.sample()


@dataclass
class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds."""

    delay: float = 0.0005

    def sample(self) -> float:
        return self.delay


@dataclass
class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]`` seconds."""

    low: float = 0.0003
    high: float = 0.0008
    seed: int = 2020

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError("low latency bound exceeds high bound")
        self._rng = random.Random(self.seed)

    def sample(self) -> float:
        return self._rng.uniform(self.low, self.high)


def lan_latency(seed: int = 2020) -> LatencyModel:
    """Intra-datacenter latency, matching the paper's single-region AWS setup.

    m5 instances within one region see sub-millisecond one-way delays; we use
    0.25-0.6 ms.
    """
    return UniformLatency(low=0.00025, high=0.0006, seed=seed)


def wan_latency(seed: int = 2020) -> LatencyModel:
    """Cross-region latency (used only by the ablation benchmark)."""
    return UniformLatency(low=0.030, high=0.045, seed=seed)


def zero_latency() -> LatencyModel:
    """No network delay at all; isolates pure compute cost."""
    return ConstantLatency(0.0)
