"""Exception hierarchy for the Fides reproduction.

All library-raised exceptions derive from :class:`FidesError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish protocol failures from storage or audit failures.
"""

from __future__ import annotations


class FidesError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class ConfigurationError(FidesError):
    """A :class:`~repro.common.config.SystemConfig` (or similar) is invalid."""


class SignatureError(FidesError):
    """A digital signature, collective signature, or MAC failed verification."""


class ValidationError(FidesError):
    """A message, block, or transaction failed structural validation."""


class ProtocolError(FidesError):
    """A protocol participant received a message it cannot process.

    Raised, for example, when a cohort receives a challenge whose hash does not
    match the block it was asked to sign, or when a coordinator receives a vote
    for an unknown transaction.
    """


class ProtocolInvariantError(ProtocolError):
    """An internal protocol invariant that must always hold was violated.

    Unlike :class:`ProtocolError` (a peer sent something we cannot process),
    this means *our own* state machine reached a configuration the protocol
    proofs rule out -- a non-monotone commit frontier, a dependency-violating
    ordering decision, a conflicting batch.  These checks used to be debug
    ``assert`` statements; raising keeps them active under ``python -O`` and
    lets the model checker surface them as first-class counterexamples.
    """


class StorageError(FidesError):
    """A datastore or shard operation failed (unknown item, bad version...)."""


class UnreachableError(ProtocolError):
    """A message was addressed to a participant that is currently down.

    Raised when sending to a server that crashed (its handler was
    unregistered) or that crashes while processing the message.  Protocol
    drivers treat it as a *liveness* event -- the round fails and is retried
    after recovery -- never as a safety violation.
    """


class ServerCrashed(FidesError):
    """Control-flow signal: a fault policy decided the server crashes *now*.

    Raised inside a server's message handler when its
    :meth:`~repro.server.faults.FaultPolicy.crash_now` hook fires; the server
    front-end catches it, drops its volatile state, and surfaces
    :class:`UnreachableError` to the sender.
    """


class RecoveryError(FidesError):
    """Crash recovery failed: corrupt persisted state or no usable peer.

    Also raised (and caught internally) when a peer's catch-up response fails
    verification -- broken hash chain, invalid co-sign, or a replay that does
    not reproduce the advertised shard roots.
    """


class AuditError(FidesError):
    """The auditor could not complete an audit (e.g. no correct log exists)."""


class TransactionAborted(FidesError):
    """A transaction was aborted by the commit protocol.

    Carries the abort ``reason`` and the offending ``txn_id`` so client code
    can decide whether to retry.
    """

    def __init__(self, txn_id, reason: str = "") -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason
