"""Lamport-style commit timestamps.

Fides identifies every transaction by a client-assigned commit timestamp
(Section 4.1, Table 1).  The paper only requires a timestamp scheme that
supports a total order and that all clients use the same mechanism; it
suggests a Lamport clock of the form ``<client_id : client_time>``.  That is
exactly what :class:`Timestamp` implements: a ``(counter, client_id)`` pair
ordered lexicographically, so two clients can never produce the same
timestamp and the order is total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import total_ordering
from typing import Iterator, Optional

from repro.common.types import ClientId


@total_ordering
@dataclass(frozen=True)
class Timestamp:
    """A totally ordered Lamport timestamp ``(counter, client_id)``.

    The counter is the primary sort key; the client id breaks ties so
    timestamps from distinct clients are never equal.
    """

    counter: int
    client_id: ClientId = ""

    def __post_init__(self) -> None:
        if self.counter < 0:
            raise ValueError(f"timestamp counter must be >= 0, got {self.counter}")

    def __lt__(self, other: "Timestamp") -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.counter, self.client_id) < (other.counter, other.client_id)

    def __str__(self) -> str:
        return f"ts-{self.counter}@{self.client_id}" if self.client_id else f"ts-{self.counter}"

    def advance(self, observed: Optional["Timestamp"] = None) -> "Timestamp":
        """Return the next timestamp for the same client.

        If ``observed`` is given (a timestamp seen from another participant),
        the new counter jumps past it, mirroring Lamport clock merging.
        """
        base = self.counter
        if observed is not None and observed.counter > base:
            base = observed.counter
        return Timestamp(base + 1, self.client_id)

    def as_tuple(self) -> tuple:
        """Return the ``(counter, client_id)`` pair used for ordering."""
        return (self.counter, self.client_id)

    @staticmethod
    def zero(client_id: ClientId = "") -> "Timestamp":
        """Return the smallest timestamp for ``client_id``."""
        return Timestamp(0, client_id)


@dataclass
class TimestampGenerator:
    """Per-client monotonic timestamp source.

    Every client owns one generator; :meth:`next` produces strictly
    increasing timestamps and :meth:`observe` merges in timestamps returned
    by servers so that a client never assigns a commit timestamp smaller
    than data it has already read (required for the timestamp-ordering
    concurrency control of Section 4.3.1).
    """

    client_id: ClientId
    _counter: int = field(default=0)

    def observe(self, other: Timestamp) -> None:
        """Merge an externally observed timestamp into the local clock."""
        if other.counter > self._counter:
            self._counter = other.counter

    def next(self) -> Timestamp:
        """Return a fresh timestamp strictly larger than anything observed."""
        self._counter += 1
        return Timestamp(self._counter, self.client_id)

    def current(self) -> Timestamp:
        """Return the latest timestamp handed out (or the zero timestamp)."""
        return Timestamp(self._counter, self.client_id)

    def stream(self) -> Iterator[Timestamp]:
        """Yield an endless stream of fresh timestamps."""
        while True:
            yield self.next()
