"""Canonical, deterministic byte encoding.

Every object that is hashed or signed in Fides (blocks, messages, read/write
sets, Merkle leaves) must have a single canonical byte representation, or two
correct servers could compute different hashes for the same logical content
and falsely accuse each other.  This module provides a small, dependency-free
canonical encoder:

* ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes`` are encoded with a
  one-byte type tag followed by a length-prefixed payload.
* ``list`` / ``tuple`` encode their length then each element.
* ``dict`` encodes entries sorted by the encoded key, making the encoding
  independent of insertion order.
* Objects exposing ``to_wire()`` (returning any of the above) are encoded via
  that method, which lets higher layers opt in without import cycles.

The format is not meant to be a general interchange format -- only to be
deterministic, unambiguous (length-prefixed, so no delimiter injection), and
cheap.

:func:`canonical_decode` is the exact inverse for the plain-data subset
(``to_wire`` objects decode back as the dict/list they produced): it powers
the durable state layer (:mod:`repro.recovery`), whose write-ahead log must
round-trip blocks and checkpoints through bytes.  Decoding is strict --
unknown tags, trailing bytes, or truncated payloads raise ``ValueError`` --
because the decoder's inputs (WAL files, catch-up payloads) are untrusted.
"""

from __future__ import annotations

import struct
from typing import Any

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"


def encode_str(text: str) -> bytes:
    """UTF-8 encode ``text`` (tiny convenience wrapper)."""
    return text.encode("utf-8")


def decode_str(data: bytes) -> str:
    """UTF-8 decode ``data`` (tiny convenience wrapper)."""
    return data.decode("utf-8")


def _length_prefixed(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload


def canonical_encode(value: Any) -> bytes:
    """Return the canonical byte encoding of ``value``.

    Raises
    ------
    TypeError
        If ``value`` (or anything nested inside it) is of an unsupported type
        and does not provide a ``to_wire()`` method.
    """
    if value is None:
        return _TAG_NONE
    if value is True:
        return _TAG_TRUE
    if value is False:
        return _TAG_FALSE
    if isinstance(value, int):
        payload = str(value).encode("ascii")
        return _TAG_INT + _length_prefixed(payload)
    if isinstance(value, float):
        # repr() round-trips floats exactly in Python 3 and is deterministic.
        payload = repr(value).encode("ascii")
        return _TAG_FLOAT + _length_prefixed(payload)
    if isinstance(value, str):
        return _TAG_STR + _length_prefixed(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return _TAG_BYTES + _length_prefixed(bytes(value))
    if isinstance(value, (list, tuple)):
        parts = [_TAG_LIST, struct.pack(">I", len(value))]
        parts.extend(canonical_encode(item) for item in value)
        return b"".join(parts)
    if isinstance(value, dict):
        encoded_items = sorted(
            (canonical_encode(key), canonical_encode(val)) for key, val in value.items()
        )
        parts = [_TAG_DICT, struct.pack(">I", len(encoded_items))]
        for key_bytes, val_bytes in encoded_items:
            parts.append(key_bytes)
            parts.append(val_bytes)
        return b"".join(parts)
    to_wire = getattr(value, "to_wire", None)
    if callable(to_wire):
        # Immutable wire objects (frozen dataclasses that are never mutated,
        # only rebuilt via ``dataclasses.replace``) can opt into a
        # per-instance encoding cache by setting ``CANONICAL_CACHEABLE``.
        # The scaled deployment broadcasts the same Block object to every
        # server, so without the cache one ordered-block delivery re-encodes
        # the block once per recipient.
        if getattr(value, "CANONICAL_CACHEABLE", False):
            cached = value.__dict__.get("_canonical_cache")
            if cached is not None:
                return cached
            encoded = canonical_encode(to_wire())
            object.__setattr__(value, "_canonical_cache", encoded)
            return encoded
        return canonical_encode(to_wire())
    raise TypeError(f"cannot canonically encode object of type {type(value).__name__}")


def _read_length(data: bytes, offset: int) -> tuple:
    if offset + 4 > len(data):
        raise ValueError("truncated canonical encoding (missing length prefix)")
    (length,) = struct.unpack_from(">I", data, offset)
    return length, offset + 4


def _decode_at(data: bytes, offset: int) -> tuple:
    """Decode one value starting at ``offset``; returns ``(value, next_offset)``."""
    if offset >= len(data):
        raise ValueError("truncated canonical encoding (missing type tag)")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag in (_TAG_INT, _TAG_FLOAT, _TAG_STR, _TAG_BYTES):
        length, offset = _read_length(data, offset)
        end = offset + length
        if end > len(data):
            raise ValueError("truncated canonical encoding (payload shorter than prefix)")
        payload = data[offset:end]
        if tag == _TAG_INT:
            return int(payload.decode("ascii")), end
        if tag == _TAG_FLOAT:
            return float(payload.decode("ascii")), end
        if tag == _TAG_STR:
            return payload.decode("utf-8"), end
        return bytes(payload), end
    if tag == _TAG_LIST:
        length, offset = _read_length(data, offset)
        items = []
        for _ in range(length):
            item, offset = _decode_at(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        length, offset = _read_length(data, offset)
        result = {}
        for _ in range(length):
            key, offset = _decode_at(data, offset)
            value, offset = _decode_at(data, offset)
            result[key] = value
        return result, offset
    raise ValueError(f"unknown canonical-encoding tag {tag!r}")


def canonical_decode(data: bytes) -> Any:
    """Decode one canonically encoded value; the inverse of :func:`canonical_encode`.

    Tuples come back as lists and ``to_wire`` objects as the plain structure
    their ``to_wire()`` produced -- callers reconstruct domain objects from
    those (see :mod:`repro.recovery.wire`).
    """
    value, offset = _decode_at(bytes(data), 0)
    if offset != len(data):
        raise ValueError(
            f"canonical encoding carries {len(data) - offset} trailing byte(s)"
        )
    return value
