"""Identifier types shared across the system.

Identifiers are thin ``str`` / ``int`` aliases plus small helpers.  Keeping
them as plain built-ins keeps every data structure trivially hashable and
serialisable, which matters because almost everything in Fides ends up inside
a canonical byte encoding that is hashed or signed.
"""

from __future__ import annotations

from typing import Union

# A data item identifier, e.g. "user:42" or "item-0007".
ItemId = str

# A stored value.  Fides treats values opaquely; we allow the common scalar
# types so the canonical encoding stays deterministic.
Value = Union[int, float, str, bytes, None]

# Server identifiers, e.g. "s0", "s1"...
ServerId = str

# Client identifiers, e.g. "c0", "c1"...
ClientId = str

# Transaction identifiers.  The paper identifies a transaction by its commit
# timestamp; we additionally carry a client-unique id string for readability.
TxnId = str


def make_server_id(index: int) -> ServerId:
    """Return the canonical server id for server number ``index``."""
    return f"s{index}"


def make_client_id(index: int) -> ClientId:
    """Return the canonical client id for client number ``index``."""
    return f"c{index}"


def make_item_id(index: int) -> ItemId:
    """Return the canonical item id for item number ``index``."""
    return f"item-{index:08d}"
