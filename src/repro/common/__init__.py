"""Shared primitives used by every other Fides subpackage.

This package deliberately has no dependency on any other ``repro``
subpackage: it holds the value types (timestamps, identifiers), the
canonical byte encoding used for hashing and signing, configuration
objects, and the exception hierarchy.
"""

from repro.common.encoding import canonical_encode, encode_str, decode_str
from repro.common.errors import (
    AuditError,
    ConfigurationError,
    FidesError,
    ProtocolError,
    SignatureError,
    StorageError,
    ValidationError,
)
from repro.common.timestamps import Timestamp, TimestampGenerator
from repro.common.types import ClientId, ItemId, ServerId, TxnId
from repro.common.config import SystemConfig

__all__ = [
    "AuditError",
    "ClientId",
    "ConfigurationError",
    "FidesError",
    "ItemId",
    "ProtocolError",
    "ServerId",
    "SignatureError",
    "StorageError",
    "SystemConfig",
    "Timestamp",
    "TimestampGenerator",
    "TxnId",
    "ValidationError",
    "canonical_encode",
    "decode_str",
    "encode_str",
]
