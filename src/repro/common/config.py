"""System-wide configuration for a Fides deployment.

A :class:`SystemConfig` captures everything needed to instantiate a cluster:
how many servers and clients, how many data items per shard, whether the
datastore is multi-versioned, which signature scheme authenticates messages,
and how many transactions are batched per block.  The defaults mirror the
experimental setup of Section 6 of the paper (10 000 items per shard,
5 operations per transaction, 100 transactions per block).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.errors import ConfigurationError
from repro.common.types import ServerId, make_server_id


@dataclass(frozen=True)
class SystemConfig:
    """Static configuration of a Fides cluster.

    Parameters
    ----------
    num_servers:
        Number of database servers; each stores exactly one shard (Section 6).
    items_per_shard:
        Number of data items initially loaded into each shard.
    txns_per_block:
        How many non-conflicting transactions the coordinator batches into a
        single block (Section 4.6); the paper's evaluation uses 100.
    ops_per_txn:
        Operations per transaction in generated workloads (the paper uses 5).
    multi_versioned:
        Whether datastores keep every committed version (enables per-version
        audits and recoverability, Section 4.2.1).
    message_signing:
        Name of the signature scheme used for per-message envelopes:
        ``"schnorr"`` (real public-key signatures, default) or ``"hash"``
        (an HMAC-style scheme used to keep very large benchmark sweeps
        tractable; block co-signing always uses real Schnorr/CoSi).
    pipeline_depth:
        How many consecutive block rounds one coordinator may keep in
        flight on the simulated timeline (DESIGN.md section 7).  The default
        of 1 reproduces the paper's sequential block production; depth >= 2
        lets phase 1 of block N+1 overlap phases 2-5 of block N where the
        chaining / commit-frontier / conflict rules allow.
    seed:
        Seed for deterministic key generation and workload generation.
    """

    num_servers: int = 5
    items_per_shard: int = 10_000
    txns_per_block: int = 100
    ops_per_txn: int = 5
    multi_versioned: bool = True
    message_signing: str = "schnorr"
    pipeline_depth: int = 1
    seed: int = 2020

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigurationError("num_servers must be >= 1")
        if self.items_per_shard < 1:
            raise ConfigurationError("items_per_shard must be >= 1")
        if self.txns_per_block < 1:
            raise ConfigurationError("txns_per_block must be >= 1")
        if self.ops_per_txn < 1:
            raise ConfigurationError("ops_per_txn must be >= 1")
        if self.message_signing not in ("schnorr", "hash"):
            raise ConfigurationError(
                f"unknown message_signing scheme {self.message_signing!r};"
                " expected 'schnorr' or 'hash'"
            )
        if self.pipeline_depth < 1:
            raise ConfigurationError("pipeline_depth must be >= 1")

    @property
    def server_ids(self) -> List[ServerId]:
        """Canonical identifiers of all servers in the cluster."""
        return [make_server_id(i) for i in range(self.num_servers)]

    @property
    def total_items(self) -> int:
        """Total number of data items across all shards."""
        return self.num_servers * self.items_per_shard

    def with_updates(self, **changes) -> "SystemConfig":
        """Return a copy of this config with ``changes`` applied."""
        current = {
            "num_servers": self.num_servers,
            "items_per_shard": self.items_per_shard,
            "txns_per_block": self.txns_per_block,
            "ops_per_txn": self.ops_per_txn,
            "multi_versioned": self.multi_versioned,
            "message_signing": self.message_signing,
            "pipeline_depth": self.pipeline_depth,
            "seed": self.seed,
        }
        current.update(changes)
        return SystemConfig(**current)


DEFAULT_CONFIG = SystemConfig()
