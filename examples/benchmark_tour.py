#!/usr/bin/env python3
"""A guided tour of the evaluation harness (Section 6 of the paper).

Runs reduced-size versions of every figure in the paper's evaluation and
prints the same series the paper plots:

* Figure 12 -- 2PC vs TFCommit (the cost of trust-freedom);
* Figure 13 -- batching transactions into blocks;
* Figure 14 -- scaling the number of servers / shards;
* Figure 15 -- growing the number of items per shard.

The full, paper-sized sweeps are available through
``python -m repro.bench <figure> --requests 1000``.

Run with::

    python examples/benchmark_tour.py
"""

from __future__ import annotations

from repro.api import ExperimentConfig, run
from repro.bench.experiments import (
    figure12_2pc_vs_tfcommit,
    figure13_txns_per_block,
    figure14_number_of_servers,
    figure15_items_per_shard,
)
from repro.bench.reporting import format_table


def main() -> None:
    print(format_table(
        figure12_2pc_vs_tfcommit(server_counts=(3, 5, 7), num_requests=20, items_per_shard=500),
        title="Figure 12: 2PC vs TFCommit (1 txn per block)",
    ))
    print()
    print(format_table(
        figure13_txns_per_block(batch_sizes=(2, 20, 40, 80, 120), num_requests=240,
                                items_per_shard=1000),
        title="Figure 13: transactions per block (5 servers)",
    ))
    print()
    print(format_table(
        figure14_number_of_servers(server_counts=(3, 5, 7, 9), num_requests=200,
                                   items_per_shard=1000),
        title="Figure 14: number of servers (100 txns per block)",
    ))
    print()
    print(format_table(
        figure15_items_per_shard(shard_sizes=(1000, 4000, 7000, 10000), num_requests=100),
        title="Figure 15: items per shard (5 servers, 100 txns per block)",
    ))
    # Beyond the paper: one scale-out point through the unified run()
    # facade -- dynamic groups over a 4-shard ordering service (§4.6 plus
    # the sharded sequencer of DESIGN.md §13).
    scaled = run(ExperimentConfig(
        deployment="scaled",
        num_servers=16,
        group_size=1,
        items_per_shard=64,
        txns_per_block=4,
        num_requests=64,
        num_clients=2,
        locality=0.9,
        ordering_shards=4,
        message_signing="hash",
        fixed_compute_ms=1.0,
    ))
    print()
    print(
        f"Scale-out point: {scaled.committed_txns} txns committed through "
        f"{scaled.distinct_groups} dynamic groups over 4 ordering shards "
        f"({scaled.scaled_tps:.1f} txns/s simulated)"
    )


if __name__ == "__main__":
    main()
