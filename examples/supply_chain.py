#!/usr/bin/env python3
"""Supply-chain tracking across mutually distrusting administrative domains.

The paper's introduction motivates Fides with applications such as supply
chain management, where "transactions [execute] on data repositories
maintained by multiple administrative domains that mutually distrust each
other."  This example models a shipment ledger spread over three domains --
a manufacturer, a shipping company, and a retailer -- each running one
untrusted Fides server:

* shipments are created, handed over, and received via multi-shard
  transactions batched into blocks (Section 4.6's multi-transaction blocks);
* every hand-over is co-signed by all domains, so no single domain can later
  rewrite the chain of custody;
* at the end, one domain tries to truncate its log to hide a hand-over and
  the audit exposes it.

Run with::

    python examples/supply_chain.py
"""

from __future__ import annotations

from repro.api import FidesSystem, SystemConfig

DOMAINS = {"s0": "manufacturer", "s1": "shipping company", "s2": "retailer"}
STAGES = ("manufactured", "in-transit", "delivered")


def main() -> None:
    config = SystemConfig(
        num_servers=3,
        items_per_shard=60,
        txns_per_block=5,       # batch each stage's five shipment updates into one block
        ops_per_txn=2,
        message_signing="hash",
    )
    system = FidesSystem(config)
    print("domains:", ", ".join(f"{sid} = {name}" for sid, name in DOMAINS.items()))

    # Each domain's shard stores the shipment status records it is responsible for.
    manufacturer_slot = {i: system.shard_map.items_of("s0")[i] for i in range(5)}
    shipping_slot = {i: system.shard_map.items_of("s1")[i] for i in range(5)}
    retailer_slot = {i: system.shard_map.items_of("s2")[i] for i in range(5)}

    client = system.client(0)

    print("\n== moving 5 shipments through the chain, one stage at a time ==")
    # Stage 1: the manufacturer creates all five shipments (one block).
    for shipment in range(5):
        session = client.begin()
        client.write(session, manufacturer_slot[shipment], f"shipment-{shipment}:{STAGES[0]}")
        client.commit(session)
    system.flush()

    # Stage 2: hand-over to the shipping company; each transaction touches two domains.
    for shipment in range(5):
        session = client.begin()
        client.read(session, manufacturer_slot[shipment])
        client.write(session, manufacturer_slot[shipment], f"shipment-{shipment}:handed-over")
        client.write(session, shipping_slot[shipment], f"shipment-{shipment}:{STAGES[1]}")
        client.commit(session)
    system.flush()

    # Stage 3: delivery to the retailer.
    for shipment in range(5):
        session = client.begin()
        client.read(session, shipping_slot[shipment])
        client.write(session, shipping_slot[shipment], f"shipment-{shipment}:delivered-out")
        client.write(session, retailer_slot[shipment], f"shipment-{shipment}:{STAGES[2]}")
        client.commit(session)
    system.flush()

    heights = system.log_heights()
    print(f"log heights per domain: {heights}")
    blocks = system.server("s0").log
    total_txns = sum(len(block.transactions) for block in blocks)
    print(f"{total_txns} custody transactions recorded in {len(blocks)} co-signed blocks")

    print("\n== honest audit ==")
    report = system.audit()
    print(f"violations: {len(report.violations)} (chain of custody intact)")

    print("\n== the shipping company tries to hide recent hand-overs ==")
    system.server("s1").log.truncate(max(0, len(system.server('s1').log) - 2))
    report = system.audit()
    print(report.summary())
    hidden = [v for v in report.violations if "s1" in v.culprits]
    print(f"\nthe audit attributes {len(hidden)} violation(s) to the shipping company (s1); "
          "the complete custody history survives on the other domains.")


if __name__ == "__main__":
    main()
