#!/usr/bin/env python3
"""Quickstart: commit a few transactions on untrusted servers and audit them.

This is the smallest end-to-end tour of the library:

1. build a Fides cluster (three untrusted database servers, one shard each);
2. run a couple of read/write transactions through TFCommit;
3. inspect the tamper-proof log that every server now replicates;
4. run an offline audit and confirm the servers upheld verifiable ACID.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import FidesSystem, SystemConfig
from repro.txn.operations import WriteOp


def main() -> None:
    config = SystemConfig(
        num_servers=3,
        items_per_shard=100,
        txns_per_block=1,  # one transaction per block, as in the paper's exposition
        ops_per_txn=2,
        message_signing="schnorr",
    )
    system = FidesSystem(config)
    print(f"built {system!r}")

    # Pick one item from each server's shard.
    items = [system.shard_map.items_of(server_id)[0] for server_id in system.server_ids]

    # Transaction 1: initialise two accounts on two different servers.
    outcome = system.run_transaction([WriteOp(items[0], 1000), WriteOp(items[1], 500)])
    print(f"txn 1: {outcome.status} in block {outcome.block_height} "
          f"(co-sign verified: {outcome.cosign_verified})")

    # Transaction 2: move 100 from the first account to the second.
    client = system.client(0)
    session = client.begin()
    balance_a = client.read(session, items[0])
    balance_b = client.read(session, items[1])
    client.write(session, items[0], balance_a - 100)
    client.write(session, items[1], balance_b + 100)
    outcome = client.commit(session)
    print(f"txn 2: {outcome.status} in block {outcome.block_height}")

    # Every server now holds the same hash-chained, collectively signed log.
    for server_id in system.server_ids:
        log = system.server(server_id).log
        print(f"  {server_id}: {len(log)} blocks, head {log.head_hash.hex()[:16]}...")

    # An external auditor verifies the whole history.
    report = system.audit()
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
