#!/usr/bin/env python3
"""Banking on untrusted servers: the paper's Figure 10 / Figure 11 scenarios.

A small bank keeps customer accounts on rented third-party servers.  Two
malicious behaviours from Section 5 of the paper are injected and then exposed
by the offline audit:

* **Scenario 1 (incorrect reads)** -- the server storing account ``x`` replays
  a stale balance to a later withdrawal, effectively double-spending.
* **Scenario 3 (data corruption)** -- the server storing account ``y``
  silently corrupts the stored balance after a commit.

The audit pins each anomaly to the exact block in the transaction history and
to the exact server responsible -- the two detection goals of Section 3.3.

Run with::

    python examples/banking_audit.py
"""

from __future__ import annotations

from repro.api import FidesSystem, SystemConfig
from repro.server.faults import StaleReadFault
from repro.txn.operations import ReadOp, WriteOp


def main() -> None:
    config = SystemConfig(
        num_servers=3,
        items_per_shard=50,
        txns_per_block=1,
        ops_per_txn=4,
        message_signing="hash",
    )
    system = FidesSystem(config)

    account_x = system.shard_map.items_of("s1")[0]   # stored on server s1
    account_y = system.shard_map.items_of("s2")[0]   # stored on server s2

    print("== setting up accounts ==")
    outcome = system.run_transaction([WriteOp(account_x, 1000), WriteOp(account_y, 500)])
    print(f"fund accounts: {outcome.status} (x=1000 on s1, y=500 on s2)")

    print("\n== T1: withdraw $100 from both accounts (honest) ==")
    outcome = system.run_transaction(
        [ReadOp(account_x), ReadOp(account_y), WriteOp(account_x, 900), WriteOp(account_y, 400)]
    )
    print(f"T1: {outcome.status} in block {outcome.block_height}")

    print("\n== server s1 turns malicious: replays the stale $1000 balance ==")
    system.inject_fault("s1", StaleReadFault(target_item=account_x, wrong_value=1000))

    print("== T2: another withdrawal, fooled by the stale read ==")
    client = system.client(1)
    session = client.begin()
    stale_balance = client.read(session, account_x)
    client.write(session, account_x, stale_balance - 100)
    outcome = client.commit(session)
    print(f"T2 read x={stale_balance} (should have been 900), {outcome.status} "
          f"in block {outcome.block_height}")

    print("\n== server s2 silently corrupts account y in its datastore ==")
    system.server("s2").store.corrupt(account_y, 999_999)

    print("\n== offline audit ==")
    report = system.audit()
    print(report.summary())

    print("\n== conclusions ==")
    assert not report.ok
    for violation in report.violations:
        print(f"  * {violation.kind.value} at block {violation.block_height} "
              f"-> misbehaving server(s): {', '.join(violation.culprits)}")
    print(f"  first anomaly in history at block {report.first_violation_height()}; "
          "everything after it is suspect (Theorem 1).")


if __name__ == "__main__":
    main()
