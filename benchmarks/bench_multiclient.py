"""Multi-client workload engine sweep (Section 6's concurrent-client setup).

Every figure in the paper is measured under many concurrent clients; the
single-client driver the harness used before this sweep existed is neither
the paper's setup nor a credible scaling story.  This benchmark runs the same
conflict-free workload through 1, 2, 4, and 8 round-robin client sessions and
checks the invariant the harness relies on: under a conflict-free workload
the committed-transaction count is independent of how many clients issue it.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import multiclient_scaling


def bench_multiclient_scaling(benchmark):
    """Sweep 1-8 concurrent clients over one conflict-free workload."""
    results, rows = run_once(
        benchmark,
        multiclient_scaling,
        client_counts=(1, 2, 4, 8),
        num_requests=32,
        items_per_shard=400,
        txns_per_block=4,
        return_results=True,
    )
    assert len(rows) == 4
    committed = [result.committed_txns for result in results]
    # Conflict-free workload: every client count commits every request.
    assert committed == [32] * 4
    for result in results:
        assert result.throughput_tps > 0
        assert result.blocks == 8
