"""Figure 15: varying the number of data items per shard (5 servers, 100/block).

Paper result: growing each shard from 1k to 10k items increases commit
latency ~15% and reduces throughput ~14% because the Merkle Hash Tree gets
deeper (each leaf update re-hashes ~10 nodes at 1k items vs ~14 at 10k).
Expected shape here: latency is higher and throughput lower at 10k items per
shard than at 1k, by a modest factor (well under 2x).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure15_items_per_shard


def bench_figure15_sweep(benchmark):
    """Regenerate the Figure 15 series (reduced size) and check its shape."""
    results, rows = run_once(
        benchmark,
        figure15_items_per_shard,
        shard_sizes=(1000, 4000, 10000),
        num_requests=100,
        txns_per_block=100,
        return_results=True,
    )
    by_items = {r.config.items_per_shard: r for r in results}
    small, large = by_items[1000], by_items[10000]
    assert small.committed_txns == large.committed_txns > 0
    # Deeper trees -> more hashing per committed block.  The hash count is
    # deterministic (it counts actual node re-hashes), so it is the robust
    # shape check; batched dirty-path updates have shrunk the Merkle term so
    # far that the end-to-end latency difference at this reduced size is
    # mostly measured-compute noise, hence only a loose sanity bound on it.
    assert large.mht_hashes_per_block > small.mht_hashes_per_block
    assert large.mht_update_ms >= small.mht_update_ms * 0.5
    assert large.txn_latency_ms <= small.txn_latency_ms * 2.5
