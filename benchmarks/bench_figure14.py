"""Figure 14: scalability with the number of database servers (100 txns/block).

Paper result: going from 3 to 9 servers raises throughput ~47% and cuts
commit latency ~33%, because the block's 500 operations spread across more
shards and each server's Merkle Hash Tree update work shrinks.
Expected shape here: throughput does not fall and latency does not rise as
servers increase, and the per-block MHT update time at 9 servers is lower
than at 3 servers.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure14_number_of_servers


def bench_figure14_sweep(benchmark):
    """Regenerate the Figure 14 series (reduced size) and check its shape."""
    results, rows = run_once(
        benchmark,
        figure14_number_of_servers,
        server_counts=(3, 6, 9),
        num_requests=200,
        items_per_shard=1000,
        txns_per_block=100,
        return_results=True,
    )
    by_servers = {r.config.num_servers: r for r in results}
    three, six, nine = by_servers[3], by_servers[6], by_servers[9]
    assert three.committed_txns == nine.committed_txns > 0
    # The per-shard MHT work shrinks as the same operations spread over more shards.
    assert nine.mht_update_ms < three.mht_update_ms
    # Latency improves (or at worst stays flat) and throughput does not
    # degrade.  Batched MHT updates shrink the Merkle term that drives the
    # paper's scaling effect, so at this reduced size the remaining margin is
    # mostly measured-compute noise; the robust check above is the per-shard
    # MHT shrink, and the end-to-end bounds are only loose sanity rails.
    assert nine.txn_latency_ms <= three.txn_latency_ms * 1.35
    assert nine.throughput_tps >= three.throughput_tps * 0.7
