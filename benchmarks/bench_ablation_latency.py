"""Ablation: LAN vs WAN network latency (design-choice study from DESIGN.md).

The paper deploys all servers inside one AWS region (sub-millisecond RTTs),
which makes TFCommit compute-bound in our pure-Python setting.  This ablation
re-runs the same workload under a cross-region (WAN) latency model: the
protocol becomes network-bound, the absolute latencies grow by an order of
magnitude, and the relative overhead of TFCommit's cryptography shrinks --
evidence that the paper's single-region numbers are the *worst case* for the
crypto overhead story.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import ablation_latency_regime


def bench_ablation_latency_regime(benchmark):
    results, rows = run_once(
        benchmark, ablation_latency_regime, num_requests=40, return_results=True
    )
    by_label = {r.config.label: r for r in results}
    lan = by_label["ablation-latency-lan"]
    wan = by_label["ablation-latency-wan"]
    assert lan.committed_txns == wan.committed_txns > 0
    # WAN rounds dominate: block latency grows by well over 5x...
    assert wan.block_latency_ms > 5.0 * lan.block_latency_ms
    # ...and is dominated by network time rather than compute.
    assert wan.network_ms_per_block > wan.compute_ms_per_block
