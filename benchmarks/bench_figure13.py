"""Figure 13: varying the number of transactions per block (5 servers).

Paper result: batching 80+ transactions per block cuts the per-transaction
commit latency ~2.6x and raises throughput ~2.5x relative to 2 per block,
because one TFCommit round (3 communication rounds + one collective
signature) is amortised over the whole batch.
Expected shape here: per-transaction latency falls monotonically (allowing
noise) and throughput rises by at least 2x from batch=2 to batch=80.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure13_txns_per_block


def bench_figure13_sweep(benchmark):
    """Regenerate the Figure 13 series (reduced size) and check its shape."""
    results, rows = run_once(
        benchmark,
        figure13_txns_per_block,
        batch_sizes=(2, 20, 80),
        num_requests=160,
        items_per_shard=1000,
        return_results=True,
    )
    by_batch = {r.config.txns_per_block: r for r in results}
    small, medium, large = by_batch[2], by_batch[20], by_batch[80]
    assert small.committed_txns > 0 and large.committed_txns > 0
    # Larger batches amortise the block cost over more transactions.
    assert large.txn_latency_ms < small.txn_latency_ms
    assert medium.txn_latency_ms < small.txn_latency_ms
    assert large.throughput_tps > 2.0 * small.throughput_tps
    assert large.txn_latency_ms < small.txn_latency_ms / 2.0
