"""Crash-recovery sweep: restore + verified catch-up latency, WAL overhead.

Section 3.3's checkpointing optimisation only pays off if a restarting
server can resume from one; this benchmark measures exactly that.  Each
point crashes one server of a scaled deployment, lets the surviving dynamic
groups keep committing (the catch-up gap), and times the full recovery
pipeline -- state-store restore, peer catch-up with hash-chain / co-sign /
root-replay verification, and network rejoin -- across state-store kinds
(in-memory vs append-only file WAL) and with/without an installed
checkpoint.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import recovery


def bench_recovery_smoke(benchmark):
    """One point per axis: recovery completes, catch-up verified, WAL bounded."""
    results, rows = run_once(
        benchmark,
        recovery,
        smoke=True,
        return_results=True,
    )
    assert rows, "the recovery sweep produced no rows"
    for recovery_result, row in results:
        assert recovery_result.caught_up
        assert not recovery_result.rejected, (
            f"honest peers were rejected: {recovery_result.rejected}"
        )
        assert recovery_result.wall_time_s > 0
        assert row["fetched blocks"] > 0, "the crash left no gap to catch up"


def bench_recovery_checkpoint_bounds_restore(benchmark):
    """With a checkpoint installed, restore replays nothing before it."""
    results, rows = run_once(
        benchmark,
        recovery,
        gap_requests=(8,),
        checkpoint_intervals=(0, 1),
        store_kinds=("memory",),
        return_results=True,
    )
    by_ckpt = {row["checkpointed"]: (result, row) for result, row in results}
    assert set(by_ckpt) == {False, True}
    unchecked_result, unchecked_row = by_ckpt[False]
    checked_result, checked_row = by_ckpt[True]
    # The checkpoint snapshot subsumes the warm-up blocks: nothing to replay.
    assert checked_result.restored_blocks == 0
    assert unchecked_result.restored_blocks > 0
    # ... and the compacted state store is strictly smaller.
    assert checked_row["state store (KiB)"] < unchecked_row["state store (KiB)"]
