"""Fault-campaign detection matrix (the paper's Lemmas 1-7 as a sweep).

The paper's evaluation measures throughput; its *contribution* is detection.
This benchmark runs the declarative fault matrix -- every fault kind from
``repro.faultsim`` under the always-firing trigger -- against the
multi-client workload engine, and asserts the paper's guarantee end to end:
every deterministic scenario is detected (by the auditor or by the TFCommit
round itself) with correct culprit attribution, and honest servers are never
blamed.  It also times the sweep, which is dominated by the audit itself, so
regressions in audit cost show up here.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import faultmatrix


def bench_faultmatrix_smoke(benchmark):
    """Always-trigger grid: every fault detected, right culprit, audit timed."""
    results, rows = run_once(
        benchmark,
        faultmatrix,
        num_requests=6,
        smoke=True,
        return_results=True,
    )
    assert len(rows) == 19
    for result in results:
        assert result.detected, f"{result.scenario} went undetected"
        assert result.culprit_correct, f"{result.scenario} blamed {result.culprits}"
        # Honest servers are never implicated.
        assert set(result.culprits) <= set(result.expected_culprits)
        assert result.blocks_until_detection is not None
        if result.detected_by == "audit":
            assert result.audit_time_s > 0
            assert result.honest_audit_time_s > 0
