"""Figure 12: 2PC vs TFCommit (commit latency and throughput, 3-7 servers).

Paper result: with one transaction per block, TFCommit's commit latency is
about 1.8x that of 2PC and its throughput about 2.1x lower -- the price of
the extra phase, the collective signature, and the Merkle root updates.
Expected shape here: 2PC wins on both axes at every server count, by a factor
between ~1.5x and ~5x (pure-Python elliptic-curve arithmetic makes the
cryptographic share of TFCommit larger than on the paper's testbed).
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import figure12_2pc_vs_tfcommit
from repro.core.fides import PROTOCOL_2PC, PROTOCOL_TFCOMMIT


def bench_figure12_sweep(benchmark):
    """Regenerate the Figure 12 series (reduced size) and check its shape."""
    results, rows = run_once(
        benchmark,
        figure12_2pc_vs_tfcommit,
        server_counts=(3, 5, 7),
        num_requests=20,
        items_per_shard=500,
        return_results=True,
    )
    by_key = {(r.config.protocol, r.config.num_servers): r for r in results}
    for servers in (3, 5, 7):
        twopc = by_key[(PROTOCOL_2PC, servers)]
        tfc = by_key[(PROTOCOL_TFCOMMIT, servers)]
        assert twopc.committed_txns == tfc.committed_txns > 0
        # 2PC is faster and has higher throughput, but TFCommit stays within
        # a small constant factor (the paper's headline claim).
        assert tfc.txn_latency_ms > twopc.txn_latency_ms
        assert twopc.throughput_tps > tfc.throughput_tps
        assert tfc.txn_latency_ms / twopc.txn_latency_ms < 8.0


def bench_figure12_single_commit_2pc(benchmark, small_cluster_config):
    """Micro view: one single-transaction 2PC commit round."""
    _bench_single_commit(benchmark, small_cluster_config, PROTOCOL_2PC)


def bench_figure12_single_commit_tfcommit(benchmark, small_cluster_config):
    """Micro view: one single-transaction TFCommit round (3 phases + co-sign)."""
    _bench_single_commit(benchmark, small_cluster_config, PROTOCOL_TFCOMMIT)


def _bench_single_commit(benchmark, config, protocol):
    import itertools

    from repro.core.fides import FidesSystem
    from repro.workload.ycsb import YcsbWorkload

    system = FidesSystem(config, protocol=protocol)
    workload = YcsbWorkload(
        item_ids=system.shard_map.all_items(), ops_per_txn=config.ops_per_txn, seed=7
    )
    # Re-executing a spec is fine: it re-reads the latest committed values and
    # writes fresh ones at a strictly larger commit timestamp.
    specs = itertools.cycle(workload.generate(500))

    def commit_one():
        outcome = system.run_transaction(next(specs).operations)
        assert outcome.committed

    benchmark(commit_one)
