"""Ablation: incremental Merkle updates vs full rebuilds (DESIGN.md).

Figures 14 and 15 hinge on the per-commit Merkle Hash Tree maintenance cost.
Fides servers keep their shard tree incrementally (O(log n) re-hashes per
written item); the naive alternative rebuilds the whole tree on every commit
(O(n)).  This ablation quantifies the gap at the paper's shard size (10 000
items, 100 writes per block) -- the incremental strategy is what makes
100-transaction blocks practical.
"""

from __future__ import annotations

from repro.crypto.merkle import MerkleTree


_SHARD_SIZE = 10_000
_WRITES_PER_BLOCK = 100


def _shard_items():
    return {f"item-{i:08d}": i for i in range(_SHARD_SIZE)}


def _writes(offset: int):
    return {
        f"item-{(offset * 37 + i * 97) % _SHARD_SIZE:08d}": offset + i
        for i in range(_WRITES_PER_BLOCK)
    }


def bench_merkle_incremental_block_update(benchmark):
    """Apply one block's writes via incremental per-leaf updates."""
    tree = MerkleTree.from_items(_shard_items())
    offsets = iter(range(1, 10_000_000))

    def apply_block():
        tree.update_many(_writes(next(offsets)))

    benchmark(apply_block)


def bench_merkle_full_rebuild_block_update(benchmark):
    """Apply one block's writes by rebuilding the whole shard tree."""
    items = _shard_items()
    tree = MerkleTree.from_items(items)
    offsets = iter(range(1, 10_000_000))

    def apply_block():
        items.update(_writes(next(offsets)))
        tree.rebuild(items)

    benchmark(apply_block)
