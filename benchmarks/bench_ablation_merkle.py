"""Ablation: batched vs per-leaf Merkle updates vs full rebuilds (DESIGN.md).

Figures 14 and 15 hinge on the per-commit Merkle Hash Tree maintenance cost.
Fides servers apply a whole block's write-set in one *batched* dirty-path
sweep (``update_many``: each dirty ancestor hashed exactly once, O(k +
k*log(n/k)) hashes for k touched leaves); the alternatives are a per-leaf
update loop (O(k*log n)) and a full rebuild on every commit (O(n)).  This
ablation quantifies both gaps at the paper's shard size (10 000 items, 100
writes per block) and asserts the batched sweep's hash count is strictly
below the per-leaf loop's ``k * (depth + 1)``.
"""

from __future__ import annotations

from repro.crypto.merkle import MerkleTree


_SHARD_SIZE = 10_000
_WRITES_PER_BLOCK = 100


def _shard_items():
    return {f"item-{i:08d}": i for i in range(_SHARD_SIZE)}


def _writes(offset: int):
    return {
        f"item-{(offset * 37 + i * 97) % _SHARD_SIZE:08d}": offset + i
        for i in range(_WRITES_PER_BLOCK)
    }


def bench_merkle_batched_block_update(benchmark):
    """Apply one block's writes in one batched dirty-path sweep."""
    tree = MerkleTree.from_items(_shard_items())
    offsets = iter(range(1, 10_000_000))
    hash_counts = []

    def apply_block():
        hash_counts.append(tree.update_many(_writes(next(offsets))))

    benchmark(apply_block)
    # The batched sweep must do strictly less hashing than k per-leaf paths.
    per_leaf_bound = _WRITES_PER_BLOCK * (tree.depth + 1)
    assert all(count < per_leaf_bound for count in hash_counts)


def bench_merkle_per_leaf_block_update(benchmark):
    """Apply one block's writes via one root-path re-hash per written leaf."""
    tree = MerkleTree.from_items(_shard_items())
    offsets = iter(range(1, 10_000_000))

    def apply_block():
        for item_id, value in _writes(next(offsets)).items():
            tree.update(item_id, value)

    benchmark(apply_block)


def bench_merkle_full_rebuild_block_update(benchmark):
    """Apply one block's writes by rebuilding the whole shard tree."""
    items = _shard_items()
    tree = MerkleTree.from_items(items)
    offsets = iter(range(1, 10_000_000))

    def apply_block():
        items.update(_writes(next(offsets)))
        tree.rebuild(items)

    benchmark(apply_block)
