"""Micro-benchmarks of the cryptographic substrate.

Not a figure from the paper, but these are the primitives whose cost drives
every TFCommit data point: Schnorr signing/verification, one full CoSi round,
collective-signature verification, Merkle tree construction, incremental leaf
updates, and Verification Object checks.
"""

from __future__ import annotations

import pytest

from repro.crypto.cosi import CoSiWitness, cosi_verify, run_cosi_round
from repro.crypto.keys import keypair_for
from repro.crypto.merkle import MerkleTree, verify_inclusion
from repro.crypto.schnorr import schnorr_sign, schnorr_verify


@pytest.fixture(scope="module")
def keypair():
    return keypair_for("bench-signer")


def bench_schnorr_sign(benchmark, keypair):
    benchmark(lambda: schnorr_sign(keypair.private, b"benchmark message"))


def bench_schnorr_verify(benchmark, keypair):
    signature = schnorr_sign(keypair.private, b"benchmark message")
    result = benchmark(lambda: schnorr_verify(keypair.public, b"benchmark message", signature))
    assert result


def bench_cosi_round_5_witnesses(benchmark):
    witnesses = [CoSiWitness(f"s{i}", keypair_for(f"s{i}")) for i in range(5)]
    benchmark(lambda: run_cosi_round(b"benchmark block digest", witnesses))


def bench_cosi_verify_5_witnesses(benchmark):
    witnesses = [CoSiWitness(f"s{i}", keypair_for(f"s{i}")) for i in range(5)]
    cosign = run_cosi_round(b"benchmark block digest", witnesses)
    public_keys = {w.identity: w.keypair.public for w in witnesses}
    result = benchmark(lambda: cosi_verify(cosign, b"benchmark block digest", public_keys))
    assert result


def bench_merkle_build_10k(benchmark):
    items = {f"item-{i:08d}": i for i in range(10_000)}
    benchmark(lambda: MerkleTree.from_items(items))


def bench_merkle_incremental_update_10k(benchmark):
    items = {f"item-{i:08d}": i for i in range(10_000)}
    tree = MerkleTree.from_items(items)
    counter = iter(range(10_000_000))

    def update_one():
        tree.update("item-00005000", next(counter))

    benchmark(update_one)


def bench_merkle_verification_object_10k(benchmark):
    items = {f"item-{i:08d}": i for i in range(10_000)}
    tree = MerkleTree.from_items(items)

    def prove_and_verify():
        proof = tree.verification_object("item-00000123")
        assert verify_inclusion("item-00000123", 123, proof, tree.root)

    benchmark(prove_and_verify)
