"""Event-driven pipelining sweep (DESIGN.md section 7).

Runs the same workload at several pipeline depths against the sequential
depth-1 schedule on the shared discrete-event timeline.  The claims under
test: depth 1 reproduces the sequential model exactly (speedup 1.0), depth
>= 2 overlaps consecutive rounds and beats it, and the audit stays clean --
pipelining changes when phases happen, never what the protocol decides.
These runs use the deterministic fixed-compute model, so the asserted
numbers are exact, not wall-clock-noisy.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import pipeline


def bench_pipeline_sweep(benchmark):
    """Sweep pipeline depth x deployment x batch size."""
    results, rows = run_once(
        benchmark,
        pipeline,
        depths=(1, 2),
        deployments=("classic", "scaled"),
        batch_sizes=(4,),
        num_requests=24,
        return_results=True,
    )
    assert len(rows) == 4
    by_label = {result.label: result for result in results}
    # Depth-1 anchors: the pipelined schedule IS the sequential schedule.
    assert by_label["pipeline-classic-d1-b4"].speedup == 1.0
    assert by_label["pipeline-scaled-d1-b4"].speedup == 1.0
    # Depth 2 must beat sequential on simulated throughput in both
    # deployments, with every transaction still committing auditor-clean.
    for label in ("pipeline-classic-d2-b4", "pipeline-scaled-d2-b4"):
        result = by_label[label]
        assert result.committed_txns == 24
        assert result.speedup > 1.1
        assert result.auditor_clean
