"""Scaled multi-coordinator deployment sweep (Section 4.6, Figure 9).

Drives locality-partitioned workloads through dynamic per-group TFCommit
rounds merged by the ordering service, against the classic single-coordinator
deployment on the same workload.  The scaling claim under test: with
partitioned traffic, small dynamic groups terminate transactions concurrently,
so the scaled deployment's throughput beats the single coordinator's and the
gap widens with the server count.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import scaledgroups


def bench_scaledgroups_sweep(benchmark):
    """Sweep servers x locality x batch size for the scaled deployment."""
    results, rows = run_once(
        benchmark,
        scaledgroups,
        server_counts=(4, 6),
        localities=(1.0,),
        batch_sizes=(2,),
        num_requests=24,
        return_results=True,
    )
    assert len(rows) == 2
    for result in results:
        # Deterministic shape: fully partitioned traffic commits everything
        # and spreads over several coordinators.
        assert result.committed_txns == 24
        assert result.group_coordinators >= 2
        assert result.scaled_tps > 0
        assert result.baseline_tps > 0
    # Wall-clock-noisy shape, asserted loosely: the busiest-coordinator time
    # model should beat the single coordinator clearly on at least one point
    # (typically ~2x at 4 servers, ~3x at 6).
    assert max(result.speedup for result in results) > 1.2
