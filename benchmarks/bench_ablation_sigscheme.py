"""Ablation: per-message signing scheme (design-choice study from DESIGN.md).

Every Fides message is signed by its sender.  The library supports real
Schnorr signatures (default for tests/examples) and a keyed-hash MAC used to
keep large benchmark sweeps tractable in pure Python.  This ablation measures
the end-to-end cost of that substitution: the wall-clock time of a sweep with
real Schnorr envelopes is considerably higher, while the *simulated* commit
latency model (which counts measured cohort compute) shifts only moderately
-- supporting the claim in DESIGN.md that the substitution does not distort
the figures' shapes.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.bench.experiments import ablation_signing_scheme


def bench_ablation_signing_scheme(benchmark):
    started = time.perf_counter()
    results, rows = run_once(
        benchmark, ablation_signing_scheme, num_requests=20, return_results=True
    )
    elapsed = time.perf_counter() - started
    by_label = {r.config.label: r for r in results}
    hash_run = by_label["ablation-signing-hash"]
    schnorr_run = by_label["ablation-signing-schnorr"]
    assert hash_run.committed_txns == schnorr_run.committed_txns > 0
    # Both schemes commit the same workload; the simulated latency stays in
    # the same ballpark (within ~3x) even though wall-clock cost differs a lot.
    assert schnorr_run.txn_latency_ms < 3.0 * hash_run.txn_latency_ms + 5.0
    assert elapsed > 0
