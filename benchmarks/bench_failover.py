"""Coordinator-failover sweep: view-change latency and post-failover liveness.

Each point crashes the coordinator mid-round (stranding the in-flight round
on the surviving cohorts), lets the outage deepen -- in the scaled
deployment disjoint groups keep committing, growing the frontier gap the
successor must certify -- and then times the view change: VIEW_CHANGE
solicitation, frontier-certificate verification, NEW_VIEW, and the
re-proposal of every stalled round.  The assertions pin the protocol's
recovery story: the stranded round is re-proposed exactly once and the
cluster commits again under the elected successor.
"""

from __future__ import annotations

from conftest import run_once

from repro.bench.experiments import failover


def bench_failover_smoke(benchmark):
    """One depth per deployment: view change completes, cluster commits again."""
    results, rows = run_once(
        benchmark,
        failover,
        smoke=True,
        return_results=True,
    )
    assert rows, "the failover sweep produced no rows"
    for outcome, row in results:
        assert row["successor"] != "s0", "the deposed coordinator was re-elected"
        assert row["new view"] >= 1
        assert row["reproposed rounds"] >= 1, "the stranded round was not re-proposed"
        assert row["certificates"] >= 2, "quorum of frontier certificates missing"
        assert row["post committed"] > 0, "no commits under the successor"
        assert not outcome.rejected_certificates


def bench_failover_outage_depth_grows_the_certified_frontier(benchmark):
    """Scaled deployment: a longer outage means a higher certified frontier."""
    results, rows = run_once(
        benchmark,
        failover,
        deployments=("scaled",),
        stall_requests=(4, 8),
        return_results=True,
    )
    by_stall = {row["stall requests"]: row for _, row in results}
    assert set(by_stall) == {4, 8}
    # Disjoint groups kept committing during the outage, so the successor's
    # certified frontier is strictly deeper for the longer outage.
    assert by_stall[8]["committed during outage"] > by_stall[4]["committed during outage"]
    assert by_stall[8]["frontier height"] > by_stall[4]["frontier height"]
