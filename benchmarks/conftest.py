"""Shared helpers for the benchmark suite.

Every ``bench_figureXX`` module regenerates one figure of the paper's
evaluation (Section 6) at a reduced request count so the whole suite runs in
minutes on a laptop; ``python -m repro.bench <figure> --requests 1000``
reproduces the paper-sized sweeps.  Shape assertions (who wins, what goes up
or down) are deliberately loose so they hold on any machine.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The figure sweeps are long-running macro-benchmarks; a single iteration
    is representative and keeps the suite's total run time bounded.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def small_cluster_config():
    """A small but non-trivial cluster used by the micro-benchmarks."""
    from repro.common.config import SystemConfig

    return SystemConfig(
        num_servers=5,
        items_per_shard=500,
        txns_per_block=1,
        ops_per_txn=5,
        multi_versioned=False,
        message_signing="hash",
    )
